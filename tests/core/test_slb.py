"""Tests for the software load balancer."""

import pytest

from repro.core.controller.slb import NoHealthyBackendError, SoftwareLoadBalancer


class TestConstruction:
    def test_needs_backends(self):
        with pytest.raises(ValueError):
            SoftwareLoadBalancer("vip", [])

    def test_rejects_duplicate_dips(self):
        with pytest.raises(ValueError):
            SoftwareLoadBalancer("vip", ["a", "a"])


class TestDispatch:
    def test_round_robin(self):
        slb = SoftwareLoadBalancer("vip", ["a", "b", "c"])
        assert [slb.pick() for _ in range(6)] == ["a", "b", "c", "a", "b", "c"]

    def test_unhealthy_backend_skipped(self):
        slb = SoftwareLoadBalancer("vip", ["a", "b", "c"])
        slb.mark_unhealthy("b")
        picks = [slb.pick() for _ in range(4)]
        assert "b" not in picks
        assert set(picks) == {"a", "c"}

    def test_no_healthy_backend_raises(self):
        slb = SoftwareLoadBalancer("vip", ["a", "b"])
        slb.mark_unhealthy("a")
        slb.mark_unhealthy("b")
        with pytest.raises(NoHealthyBackendError):
            slb.pick()

    def test_recovered_backend_readmitted(self):
        slb = SoftwareLoadBalancer("vip", ["a", "b"])
        slb.mark_unhealthy("a")
        slb.mark_healthy("a")
        assert "a" in [slb.pick() for _ in range(2)]

    def test_request_accounting(self):
        slb = SoftwareLoadBalancer("vip", ["a", "b"])
        for _ in range(4):
            slb.pick()
        assert slb.requests_total == 4
        assert slb.backends["a"].requests_served == 2

    def test_unknown_dip_raises(self):
        slb = SoftwareLoadBalancer("vip", ["a"])
        with pytest.raises(KeyError):
            slb.mark_unhealthy("ghost")


class TestHealthChecks:
    def test_health_check_ejects_dead_backends(self):
        alive = {"a": True, "b": False}
        slb = SoftwareLoadBalancer("vip", ["a", "b"], health_check=alive.get)
        out = slb.run_health_checks()
        assert out == ["b"]
        assert slb.healthy_dips() == ["a"]

    def test_health_check_readmits_recovered(self):
        alive = {"a": False}
        slb = SoftwareLoadBalancer("vip", ["a"], health_check=alive.get)
        slb.run_health_checks()
        alive["a"] = True
        slb.run_health_checks()
        assert slb.pick() == "a"


class TestScaleOut:
    def test_add_backend(self):
        slb = SoftwareLoadBalancer("vip", ["a"])
        slb.add_backend("b")
        assert set(slb.pick() for _ in range(2)) == {"a", "b"}

    def test_add_duplicate_rejected(self):
        slb = SoftwareLoadBalancer("vip", ["a"])
        with pytest.raises(ValueError):
            slb.add_backend("a")


class TestChurn:
    def test_flapping_backend_serves_only_while_healthy(self):
        alive = {"a": True, "b": True}
        slb = SoftwareLoadBalancer("vip", ["a", "b"], health_check=alive.get)
        picks = []
        for round_index in range(60):
            alive["b"] = round_index % 2 == 0  # flaps every round
            slb.run_health_checks()
            picks.append(slb.pick())
        assert picks.count("a") > picks.count("b")
        assert "b" in picks  # it does serve during its healthy rounds

    def test_accounting_survives_churn(self):
        slb = SoftwareLoadBalancer("vip", ["a", "b", "c"])
        for i in range(30):
            if i == 10:
                slb.mark_unhealthy("a")
            if i == 20:
                slb.mark_healthy("a")
            slb.pick()
        assert slb.requests_total == 30
        assert sum(b.requests_served for b in slb.backends.values()) == 30

    def test_scale_out_under_load(self):
        slb = SoftwareLoadBalancer("vip", ["a"])
        for _ in range(4):
            slb.pick()
        slb.add_backend("b")
        picks = [slb.pick() for _ in range(4)]
        assert picks.count("b") == 2  # round robin includes the newcomer
