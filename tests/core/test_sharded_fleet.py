"""The podset-sharded fleet driver: conservation, parity, growth, scale.

The exactness bar: sharded execution reorganizes *who runs the round*, not
what the round does — so probe conservation must be exact (to the probe),
the chaos invariant catalogue must stay clean, and growth mid-run must fold
new podsets into the shard map without dropping a probe.

``test_scale_smoke_1k_window`` is the tier-1 smoke for the scale suite:
1024 servers, one simulated 10-minute window, sharded class rounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos.invariants import InvariantChecker
from repro.core.agent.agent import AgentConfig
from repro.core.controller.generator import GeneratorConfig
from repro.core.dsa.pipeline import DsaConfig
from repro.core.dsa.records import CLASS_STREAM
from repro.core.sharded import ShardedFleet
from repro.core.system import PingmeshSystem, PingmeshSystemConfig
from repro.netsim.faults import SilentRandomDrop
from repro.netsim.topology import TopologySpec
from repro.stream.plane import StreamConfig

_SPEC = TopologySpec(n_podsets=2, pods_per_podset=2, servers_per_pod=4, n_spines=4)


def _system(round_mode="class", shard_aggregation=True, spec=_SPEC, seed=0):
    return PingmeshSystem(
        PingmeshSystemConfig(
            specs=(spec,),
            seed=seed,
            agent=AgentConfig(round_mode=round_mode),
            stream=StreamConfig(shard_aggregation=shard_aggregation),
        )
    )


class TestShardedConservation:
    def test_probe_conservation_exact_with_observer(self):
        """Every probe a sharded round carries — classed, degraded, VIP —
        must be visible to the fabric's probe observers, and the fabric
        ledger must balance to the probe."""
        system = _system()
        observed = []
        system.fabric.probe_observers.append(lambda *args: observed.append(args))
        fleet = ShardedFleet(system)
        carried_before = system.fabric.probes_carried
        refused_before = system.fabric.probes_refused
        batched_before = system.fabric.probes_carried_batched
        launched = fleet.run_round(0.0)
        assert launched > 0
        assert len(observed) == launched
        ledger = (
            (system.fabric.probes_carried - carried_before)
            + (system.fabric.probes_refused - refused_before)
            - (system.fabric.probes_carried_batched - batched_before)
        )
        assert ledger == len(observed)

    def test_conservation_holds_under_faults(self):
        system = _system()
        observed = []
        system.fabric.probe_observers.append(lambda *args: observed.append(args))
        fleet = ShardedFleet(system)
        spine = system.topology.dc(0).spines[0]
        system.fabric.faults.inject(
            SilentRandomDrop(switch_id=spine.device_id, drop_prob=0.3)
        )
        launched = fleet.run_round(30.0)
        assert len(observed) == launched
        # Faulted envelopes degraded: some pairs went per-pair.
        shard = next(iter(fleet.shards.values()))
        assert shard._plan is not None
        assert any(s._passthrough for s in fleet.shards.values())

    def test_chaos_invariant_checker_clean(self):
        """The full chaos invariant catalogue over sharded rounds."""
        system = _system()
        fleet = ShardedFleet(system)
        # Shard uploaders write the latency streams without being agents,
        # so the exclusive-writer replay ledger does not apply here.
        checker = InvariantChecker(system, exclusive_upload_writers=False)
        checker.attach()
        fleet.run_for(180.0)
        checker.check_phase()
        assert checker.clean, [str(v) for v in checker.violations]

    def test_stream_plane_conservation_under_sharding(self):
        system = _system()
        fleet = ShardedFleet(system)
        fleet.run_for(120.0)
        ledger = system.stream.conservation()
        assert ledger["probes_folded"] == (
            ledger["probes_emitted"] + ledger["probes_pending"]
        )
        assert ledger["probes_folded"] > 0


class TestShardedParity:
    def test_sharded_totals_match_per_agent_class_mode(self):
        """A sharded fleet and per-agent class agents over the same world
        launch identical probe counts per round (same plans, same
        partition — only the draw batching differs)."""
        sharded = _system(seed=3)
        fleet = ShardedFleet(sharded)
        per_agent = _system(seed=3, shard_aggregation=False)
        per_agent.start()

        fleet_launched = fleet.run_round(0.0)
        agent_launched = sum(
            agent.run_probe_round(0.0) for agent in per_agent.agents.values()
        )
        assert fleet_launched == agent_launched

    def test_class_summaries_reach_class_stream(self):
        system = _system()
        fleet = ShardedFleet(system)
        fleet.run_round(0.0)
        for shard in fleet.shards.values():
            shard.class_uploader.flush(600.0)
        records = list(system.store.read(CLASS_STREAM))
        assert records
        assert all(r["src"].startswith("shard:") for r in records)
        assert all(r["src_pod"] == -1 for r in records)

    def test_fleet_counters_roll_up(self):
        system = _system()
        fleet = ShardedFleet(system)
        launched = fleet.run_round(0.0)
        merged = fleet.fleet_counters()
        assert merged.probes_total == launched
        assert merged.percentile_us(50) is not None


class TestShardedGrowth:
    def test_growth_adds_shards_and_probes(self):
        system = _system()
        fleet = ShardedFleet(system)
        fleet.run_for(60.0)
        shards_before = len(fleet.shards)
        probes_before = fleet.probes_sent
        system.add_podset(0)
        # New agents need a pinglist with the new peers; regenerate + the
        # next fleet round picks them up.
        fleet.run_for(120.0)
        assert len(fleet.shards) == shards_before + 1
        assert fleet.probes_sent > probes_before
        new_shard = fleet.shards[(0, shards_before)]
        assert new_shard.probes_sent > 0


class TestWorkerPool:
    def test_worker_pool_matches_serial_accounting(self):
        """Worker count must not change the probe ledger or the SNMP sums
        — the deferred class ledgers make side effects deterministic."""
        totals = {}
        for workers in (0, 4):
            system = _system(seed=7)
            fleet = ShardedFleet(system, workers=workers)
            launched = fleet.run_round(0.0)
            totals[workers] = (
                launched,
                system.fabric.probes_carried,
                sum(
                    s.counters.packets_forwarded
                    for s in system.topology.dc(0).all_switches()
                ),
            )
        assert totals[0] == totals[4]

    def test_worker_pool_with_observers_falls_back_serial(self):
        system = _system()
        system.fabric.probe_observers.append(lambda *args: None)
        fleet = ShardedFleet(system, workers=4)
        # Must not raise: observers force the serial path.
        assert fleet.run_round(0.0) > 0

    def test_started_system_with_agent_rounds_rejected(self):
        system = _system()
        system.start()  # schedules per-agent rounds
        with pytest.raises(RuntimeError, match="per-agent"):
            ShardedFleet(system)


def _fingerprint(system, fleet):
    """Everything a round materializes, in comparable form: per-shard RNG
    end states, the probe ledger, and every uploaded row (bit-for-bit —
    floats included — so any draw-sequence divergence shows up)."""
    import json

    for key in sorted(fleet.shards):
        shard = fleet.shards[key]
        shard.probe_uploader.flush(1e9)
        shard.class_uploader.flush(1e9)
    rows = {
        stream: sorted(
            json.dumps(row, sort_keys=True, default=str)
            for row in system.store.read(stream)
        )
        for stream in ("pingmesh/latency", CLASS_STREAM)
    }
    rng_states = {
        key: json.dumps(
            fleet.shards[key].rng.bit_generator.state, sort_keys=True, default=str
        )
        for key in sorted(fleet.shards)
    }
    switch_counters = [
        (s.device_id, s.counters.packets_forwarded, s.counters.silent_drops)
        for s in system.topology.dc(0).all_switches()
    ]
    return (
        fleet.probes_sent,
        system.fabric.probes_carried,
        system.fabric.probes_refused,
        rows,
        rng_states,
        switch_counters,
    )


def _run_executor_script(executor, workers, seed=11):
    """One fixed scenario — rounds, a mid-run fault, growth — under the
    given executor.  Same seed must mean the same fingerprint."""
    system = _system(seed=seed)
    with ShardedFleet(system, workers=workers, executor=executor) as fleet:
        fleet.run_round(0.0)
        spine = system.topology.dc(0).spines[0]
        fault = system.fabric.faults.inject(
            SilentRandomDrop(switch_id=spine.device_id, drop_prob=0.3)
        )
        fleet.run_round(30.0)
        system.fabric.faults.clear(fault)
        system.add_podset(0)
        fleet.run_round(60.0)
        fleet.run_round(90.0)
        return _fingerprint(system, fleet)


class TestExecutorParity:
    """serial / thread / process must be bit-identical under one seed —
    the contract that makes the executor a pure deployment knob."""

    def test_three_executors_bit_identical(self):
        serial = _run_executor_script("serial", 0)
        thread = _run_executor_script("thread", 2)
        process = _run_executor_script("process", 2)
        assert serial == thread
        assert serial == process

    def test_probe_conservation_exact_per_executor(self):
        """launched == carried + refused - batched for every executor —
        the fabric ledger balances to the probe no matter who runs the
        draws or which process they run in."""
        for executor, workers in (("serial", 0), ("thread", 2), ("process", 2)):
            system = _system(seed=5)
            with ShardedFleet(system, workers=workers, executor=executor) as fleet:
                before = (
                    system.fabric.probes_carried,
                    system.fabric.probes_refused,
                    system.fabric.probes_carried_batched,
                )
                launched = fleet.run_round(0.0)
                assert launched > 0
                ledger = (
                    (system.fabric.probes_carried - before[0])
                    + (system.fabric.probes_refused - before[1])
                    - (system.fabric.probes_carried_batched - before[2])
                )
                assert ledger == launched, executor

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            ShardedFleet(_system(), workers=2, executor="fiber")

    def test_pooled_executor_requires_workers(self):
        with pytest.raises(ValueError, match="workers >= 1"):
            ShardedFleet(_system(), workers=0, executor="process")

    def test_close_reaps_the_process_pool(self):
        fleet = ShardedFleet(_system(), workers=2, executor="process")
        fleet.run_round(0.0)
        assert fleet._pool is not None
        fleet.close()
        assert fleet._pool is None
        # And close() is idempotent.
        fleet.close()


class TestScaleSmoke:
    def test_scale_smoke_1k_window(self):
        """Tier-1 smoke of the scale suite: 1024 servers, one simulated
        10-minute window through the sharded class driver."""
        spec = TopologySpec(
            n_podsets=4, pods_per_podset=16, servers_per_pod=16, n_spines=8
        )
        system = PingmeshSystem(
            PingmeshSystemConfig(
                specs=(spec,),
                agent=AgentConfig(round_mode="class", upload_period_s=600.0),
                generator=GeneratorConfig(max_peers_per_server=32),
                stream=StreamConfig(shard_aggregation=True),
                dsa=DsaConfig(
                    ingestion_delay_s=0.0, near_real_time_period_s=300.0
                ),
            )
        )
        assert len(system.topology.dc(0).servers) == 1024
        fleet = ShardedFleet(system)
        # An on-demand broker rides the same fleet: one tenant burst must
        # complete inside the window without perturbing baseline rounds.
        from repro.broker import MeasurementBroker, RequestState, TenantQuota

        broker = MeasurementBroker(system)
        broker.register_tenant("smoke", TenantQuota(credits_per_window=500))
        dc = system.topology.dc(0)
        pairs = [
            (a.device_id, b.device_id)
            for a, b in zip(dc.servers_in_pod(0)[:8], dc.servers_in_pod(16)[:8])
        ]
        channel = broker.submit("smoke", pairs=pairs, probes_per_pair=2)
        fleet.run_for(600.0)
        assert fleet.rounds_run >= 1
        assert fleet.probes_sent > 0
        assert len(fleet.shards) == 4
        assert channel.state is RequestState.COMPLETED
        assert channel.probes_completed == channel.probes_admitted
        assert fleet.broker_probes_sent == broker.probes_launched
        assert broker.accounts["smoke"].conserved()
        # The stream plane folded shard deltas, conserved.
        ledger = system.stream.conservation()
        assert ledger["probes_folded"] == (
            ledger["probes_emitted"] + ledger["probes_pending"]
        )
