"""Tests for the bounded-memory result uploader (spool-and-replay)."""

import pytest

from repro.core.agent.uploader import ResultUploader
from repro.cosmos.store import CosmosStore


@pytest.fixture()
def store():
    return CosmosStore()


def _record(i=0):
    return {"t": float(i), "src": "a", "dst": "b", "rtt_us": 250.0, "success": True}


def _fast_retry(store, **kwargs):
    """An uploader whose backoff windows are tiny relative to the test's
    flush spacing, so each spaced flush really attempts the transport."""
    kwargs.setdefault("retry_base_s", 1.0)
    kwargs.setdefault("retry_cap_s", 2.0)
    return ResultUploader(store, "srv0", **kwargs)


class TestBuffering:
    def test_add_and_flush_to_store(self, store):
        uploader = ResultUploader(store, "srv0")
        for i in range(5):
            uploader.add(_record(i))
        assert uploader.buffered_records == 5
        assert uploader.flush(t=100.0)
        assert uploader.buffered_records == 0
        assert store.stream("pingmesh/latency").record_count == 5
        assert uploader.stats.records_uploaded == 5

    def test_threshold_trigger(self, store):
        uploader = ResultUploader(store, "srv0", flush_threshold_records=3)
        uploader.add(_record())
        assert not uploader.should_flush
        uploader.add(_record())
        uploader.add(_record())
        assert uploader.should_flush

    def test_buffer_hard_cap_drops_oldest(self, store):
        uploader = ResultUploader(
            store, "srv0", flush_threshold_records=2, max_buffer_records=10
        )
        for i in range(15):
            uploader.add(_record(i))
        assert uploader.buffered_records == 10
        assert uploader.stats.records_discarded == 5

    def test_empty_flush_is_success(self, store):
        uploader = ResultUploader(store, "srv0")
        assert uploader.flush(t=0.0)

    def test_construction_validation(self, store):
        with pytest.raises(ValueError):
            ResultUploader(store, "srv0", flush_threshold_records=0)
        with pytest.raises(ValueError):
            ResultUploader(
                store, "srv0", flush_threshold_records=10, max_buffer_records=5
            )
        with pytest.raises(ValueError):
            ResultUploader(store, "srv0", log_cap_bytes=10)


class TestRetryAndDiscard:
    def test_one_failed_attempt_per_flush_tick(self, store):
        """Regression pin: a failing transport consumes exactly ONE of the
        batch's attempts per flush call — never the whole ``max_retries``
        budget in one tick with zero elapsed time."""
        attempts = []

        def failing_upload(records, t):
            attempts.append(t)
            raise ConnectionError("cosmos VIP unreachable")

        uploader = _fast_retry(store, max_retries=3, upload_fn=failing_upload)
        uploader.add(_record(0))
        assert uploader.flush(t=0.0) is False
        assert attempts == [0.0]  # one attempt, not three
        assert uploader.stats.records_discarded == 0  # spooled, not dropped
        assert uploader.spooled_records == 1

    def test_backoff_gates_the_next_attempt(self, store):
        attempts = []

        def failing_upload(records, t):
            attempts.append(t)
            raise ConnectionError("down")

        uploader = ResultUploader(
            store, "srv0", retry_base_s=100.0, retry_cap_s=200.0,
            upload_fn=failing_upload,
        )
        uploader.add(_record(0))
        uploader.flush(t=0.0)
        # Inside the backoff window: no transport attempt is made.
        assert uploader.flush(t=1.0) is False
        assert attempts == [0.0]
        # force bypasses the gate.
        uploader.flush(t=2.0, force=True)
        assert attempts == [0.0, 2.0]

    def test_retry_then_discard(self, store):
        """'it will retry several times.  After that it will stop trying
        and discard the in-memory data' — with the retries spread over
        time, one per flush tick."""
        attempts = []

        def failing_upload(records, t):
            attempts.append(len(records))
            raise ConnectionError("cosmos VIP unreachable")

        uploader = _fast_retry(store, max_retries=3, upload_fn=failing_upload)
        for i in range(4):
            uploader.add(_record(i))
        assert uploader.flush(t=0.0) is False
        assert uploader.flush(t=10.0) is False
        assert uploader.flush(t=20.0) is False
        assert attempts == [4, 4, 4]
        assert uploader.buffered_records == 0
        assert uploader.spooled_records == 0  # discarded after the 3rd miss
        assert uploader.stats.records_discarded == 4
        assert uploader.stats.upload_failures == 3

    def test_transient_failure_recovers_within_retries(self, store):
        calls = {"n": 0}

        def flaky_upload(records, t):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionError("flaky")
            store.append("pingmesh/latency", records, t=t)

        uploader = _fast_retry(store, upload_fn=flaky_upload)
        uploader.add(_record())
        assert uploader.flush(t=0.0) is False  # attempt 1: spooled
        assert uploader.flush(t=10.0) is False  # attempt 2: still spooled
        assert uploader.flush(t=20.0) is True  # attempt 3: replayed
        assert store.stream("pingmesh/latency").record_count == 1
        assert uploader.stats.records_replayed == 1
        assert uploader.stats.records_discarded == 0

    def test_memory_stays_bounded_under_permanent_failure(self, store):
        def failing_upload(records, t):
            raise ConnectionError("down")

        uploader = _fast_retry(
            store,
            flush_threshold_records=10,
            max_buffer_records=20,
            spool_cap_records=50,
            upload_fn=failing_upload,
        )
        for i in range(500):
            uploader.add(_record(i))
            if uploader.should_flush:
                uploader.flush(t=float(i))
        assert uploader.buffered_records <= 20
        assert uploader.spooled_records <= 50


class TestSpoolReplay:
    def test_blackout_then_heal_replays_without_duplicates(self, store):
        uploader = _fast_retry(store)

        def refuse(records, t):
            raise ConnectionError("blackout")

        uploader.set_upload_fn(refuse)
        for i in range(6):
            uploader.add(_record(i))
        uploader.flush(t=0.0)
        uploader.add(_record(6))
        uploader.flush(t=10.0)
        assert uploader.spooled_records == 7
        assert not store.has_stream("pingmesh/latency")

        uploader.set_upload_fn(None)  # Cosmos heals
        uploader.add(_record(7))
        # One flush drains the whole backlog (successes chain), oldest first.
        assert uploader.flush(t=20.0) is True
        assert uploader.spooled_records == 0
        assert store.stream("pingmesh/latency").record_count == 8
        assert uploader.stats.records_replayed == 7
        assert uploader.stats.records_uploaded == 8
        # No duplicates: every stored record is distinct.
        rows = list(store.read("pingmesh/latency"))
        assert len({row["t"] for row in rows}) == 8

    def test_spool_evicts_oldest_on_overflow(self, store):
        def refuse(records, t):
            raise ConnectionError("down")

        uploader = _fast_retry(store, spool_cap_records=5, upload_fn=refuse)
        for i in range(3):
            uploader.add(_record(i))
        uploader.flush(t=0.0)
        for i in range(3, 7):
            uploader.add(_record(i))
        uploader.flush(t=10.0)
        # Cap 5: the first batch (3 records) was evicted for the newer 4.
        assert uploader.spooled_records == 4
        assert uploader.stats.records_discarded == 3

    def test_replay_due(self, store):
        def refuse(records, t):
            raise ConnectionError("down")

        uploader = ResultUploader(
            store, "srv0", retry_base_s=50.0, retry_cap_s=100.0, upload_fn=refuse
        )
        assert not uploader.replay_due(0.0)  # nothing spooled
        uploader.add(_record())
        uploader.flush(t=0.0)
        assert not uploader.replay_due(10.0)  # backoff window still open
        assert uploader.replay_due(200.0)  # past the cap: due


class TestLocalLog:
    def test_log_lines_written(self, store):
        uploader = ResultUploader(store, "srv0")
        uploader.add(_record(1))
        lines = uploader.local_log_lines()
        assert len(lines) == 1
        assert '"src":"a"' in lines[0]

    def test_log_rotates_at_cap(self, store):
        """'The size of log files is limited to a configurable size.'"""
        uploader = ResultUploader(store, "srv0", log_cap_bytes=1024)
        for i in range(200):
            uploader.add(_record(i))
        assert uploader.local_log_bytes <= 1024
        # Oldest entries rotated out; the newest survive.
        assert f'"t":{float(199)}' in uploader.local_log_lines()[-1]


class TestAccountingConservation:
    """added == uploaded + discarded + buffered + spooled, at every point."""

    def _balanced(self, uploader):
        s = uploader.stats
        return s.records_added == (
            s.records_uploaded
            + s.records_discarded
            + uploader.buffered_records
            + uploader.spooled_records
        )

    def test_conservation_through_success(self, store):
        uploader = ResultUploader(store, "srv0")
        for i in range(7):
            uploader.add(_record(i))
            assert self._balanced(uploader)
        uploader.flush(t=1.0)
        assert self._balanced(uploader)
        assert uploader.stats.records_added == 7

    def test_conservation_through_discard(self, store):
        def failing_upload(records, t):
            raise ConnectionError("down")

        uploader = _fast_retry(store, upload_fn=failing_upload)
        for i in range(4):
            uploader.add(_record(i))
        for t in (1.0, 10.0, 20.0):
            uploader.flush(t=t)
            assert self._balanced(uploader)
        assert uploader.stats.failed_flushes == 1
        assert uploader.stats.records_discarded == 4

    def test_conservation_through_overflow(self, store):
        uploader = ResultUploader(
            store, "srv0", flush_threshold_records=2, max_buffer_records=10
        )
        for i in range(25):
            uploader.add(_record(i))
            assert self._balanced(uploader)

    def test_conservation_through_spool_and_replay(self, store):
        uploader = _fast_retry(store, spool_cap_records=8)

        def refuse(records, t):
            raise ConnectionError("blackout")

        uploader.set_upload_fn(refuse)
        t = 0.0
        for i in range(30):
            uploader.add(_record(i))
            if i % 3 == 2:
                t += 10.0
                uploader.flush(t=t)
            assert self._balanced(uploader)
        uploader.set_upload_fn(None)
        uploader.flush(t=t + 10.0)
        assert self._balanced(uploader)
        assert uploader.spooled_records == 0


class TestUploadFnSwap:
    def test_set_upload_fn_blacks_out_and_restores(self, store):
        uploader = _fast_retry(store)

        def refuse(records, t):
            raise ConnectionError("blackout")

        uploader.set_upload_fn(refuse)
        uploader.add(_record(0))
        assert uploader.flush(t=1.0) is False
        assert not store.has_stream("pingmesh/latency")
        assert uploader.spooled_records == 1  # parked, not lost

        uploader.set_upload_fn(None)  # back to the default store append
        uploader.add(_record(1))
        assert uploader.flush(t=20.0) is True
        # Both the blacked-out record (replayed) and the new one land.
        assert store.stream("pingmesh/latency").record_count == 2
        assert uploader.stats.records_replayed == 1

    def test_failed_flushes_counts_discard_events_not_attempts(self, store):
        def failing_upload(records, t):
            raise ConnectionError("down")

        uploader = _fast_retry(store, max_retries=3, upload_fn=failing_upload)
        uploader.add(_record())
        for t in (1.0, 10.0, 20.0):
            uploader.flush(t=t)
        assert uploader.stats.upload_failures == 3  # one per spaced retry
        assert uploader.stats.failed_flushes == 1  # one per discarded batch
        assert uploader.stats.flushes == 3
