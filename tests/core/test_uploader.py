"""Tests for the bounded-memory result uploader."""

import pytest

from repro.core.agent.uploader import ResultUploader
from repro.cosmos.store import CosmosStore


@pytest.fixture()
def store():
    return CosmosStore()


def _record(i=0):
    return {"t": float(i), "src": "a", "dst": "b", "rtt_us": 250.0, "success": True}


class TestBuffering:
    def test_add_and_flush_to_store(self, store):
        uploader = ResultUploader(store, "srv0")
        for i in range(5):
            uploader.add(_record(i))
        assert uploader.buffered_records == 5
        assert uploader.flush(t=100.0)
        assert uploader.buffered_records == 0
        assert store.stream("pingmesh/latency").record_count == 5
        assert uploader.stats.records_uploaded == 5

    def test_threshold_trigger(self, store):
        uploader = ResultUploader(store, "srv0", flush_threshold_records=3)
        uploader.add(_record())
        assert not uploader.should_flush
        uploader.add(_record())
        uploader.add(_record())
        assert uploader.should_flush

    def test_buffer_hard_cap_drops_oldest(self, store):
        uploader = ResultUploader(
            store, "srv0", flush_threshold_records=2, max_buffer_records=10
        )
        for i in range(15):
            uploader.add(_record(i))
        assert uploader.buffered_records == 10
        assert uploader.stats.records_discarded == 5

    def test_empty_flush_is_success(self, store):
        uploader = ResultUploader(store, "srv0")
        assert uploader.flush(t=0.0)

    def test_construction_validation(self, store):
        with pytest.raises(ValueError):
            ResultUploader(store, "srv0", flush_threshold_records=0)
        with pytest.raises(ValueError):
            ResultUploader(
                store, "srv0", flush_threshold_records=10, max_buffer_records=5
            )
        with pytest.raises(ValueError):
            ResultUploader(store, "srv0", log_cap_bytes=10)


class TestRetryAndDiscard:
    def test_retry_then_discard(self, store):
        """'it will retry several times.  After that it will stop trying
        and discard the in-memory data.'"""
        attempts = []

        def failing_upload(records, t):
            attempts.append(len(records))
            raise ConnectionError("cosmos VIP unreachable")

        uploader = ResultUploader(
            store, "srv0", max_retries=3, upload_fn=failing_upload
        )
        for i in range(4):
            uploader.add(_record(i))
        assert uploader.flush(t=0.0) is False
        assert attempts == [4, 4, 4]
        assert uploader.buffered_records == 0  # discarded, not kept
        assert uploader.stats.records_discarded == 4
        assert uploader.stats.upload_failures == 3

    def test_transient_failure_recovers_within_retries(self, store):
        calls = {"n": 0}

        def flaky_upload(records, t):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionError("flaky")
            store.append("pingmesh/latency", records, t=t)

        uploader = ResultUploader(store, "srv0", upload_fn=flaky_upload)
        uploader.add(_record())
        assert uploader.flush(t=0.0) is True
        assert store.stream("pingmesh/latency").record_count == 1

    def test_memory_stays_bounded_under_permanent_failure(self, store):
        def failing_upload(records, t):
            raise ConnectionError("down")

        uploader = ResultUploader(
            store,
            "srv0",
            flush_threshold_records=10,
            max_buffer_records=20,
            upload_fn=failing_upload,
        )
        for i in range(500):
            uploader.add(_record(i))
            if uploader.should_flush:
                uploader.flush(t=float(i))
        assert uploader.buffered_records <= 20


class TestLocalLog:
    def test_log_lines_written(self, store):
        uploader = ResultUploader(store, "srv0")
        uploader.add(_record(1))
        lines = uploader.local_log_lines()
        assert len(lines) == 1
        assert '"src":"a"' in lines[0]

    def test_log_rotates_at_cap(self, store):
        """'The size of log files is limited to a configurable size.'"""
        uploader = ResultUploader(store, "srv0", log_cap_bytes=1024)
        for i in range(200):
            uploader.add(_record(i))
        assert uploader.local_log_bytes <= 1024
        # Oldest entries rotated out; the newest survive.
        assert f'"t":{float(199)}' in uploader.local_log_lines()[-1]


class TestAccountingConservation:
    """added == uploaded + discarded + buffered, at every point in time."""

    def _balanced(self, uploader):
        s = uploader.stats
        return s.records_added == (
            s.records_uploaded + s.records_discarded + uploader.buffered_records
        )

    def test_conservation_through_success(self, store):
        uploader = ResultUploader(store, "srv0")
        for i in range(7):
            uploader.add(_record(i))
            assert self._balanced(uploader)
        uploader.flush(t=1.0)
        assert self._balanced(uploader)
        assert uploader.stats.records_added == 7

    def test_conservation_through_discard(self, store):
        def failing_upload(records, t):
            raise ConnectionError("down")

        uploader = ResultUploader(store, "srv0", upload_fn=failing_upload)
        for i in range(4):
            uploader.add(_record(i))
        uploader.flush(t=1.0)
        assert self._balanced(uploader)
        assert uploader.stats.failed_flushes == 1

    def test_conservation_through_overflow(self, store):
        uploader = ResultUploader(
            store, "srv0", flush_threshold_records=2, max_buffer_records=10
        )
        for i in range(25):
            uploader.add(_record(i))
            assert self._balanced(uploader)


class TestUploadFnSwap:
    def test_set_upload_fn_blacks_out_and_restores(self, store):
        uploader = ResultUploader(store, "srv0")

        def refuse(records, t):
            raise ConnectionError("blackout")

        uploader.set_upload_fn(refuse)
        uploader.add(_record(0))
        assert uploader.flush(t=1.0) is False
        assert not store.has_stream("pingmesh/latency")

        uploader.set_upload_fn(None)  # back to the default store append
        uploader.add(_record(1))
        assert uploader.flush(t=2.0) is True
        assert store.stream("pingmesh/latency").record_count == 1

    def test_failed_flushes_counts_discard_events_not_attempts(self, store):
        def failing_upload(records, t):
            raise ConnectionError("down")

        uploader = ResultUploader(
            store, "srv0", max_retries=3, upload_fn=failing_upload
        )
        uploader.add(_record())
        uploader.flush(t=1.0)
        assert uploader.stats.upload_failures == 3  # one per retry
        assert uploader.stats.failed_flushes == 1  # one per discarded batch
        assert uploader.stats.flushes == 1
