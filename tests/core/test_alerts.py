"""Tests for threshold alerting (§4.3)."""

import pytest

from repro.core.dsa.alerts import AlertEngine, SlaThresholds
from repro.core.dsa.sla import NetworkSla, SlaScope


def _sla(
    drop_rate=1e-5,
    p99_us=800.0,
    probe_count=1000,
    key="dc0",
    scope=SlaScope.DATACENTER,
):
    return NetworkSla(
        scope=scope,
        key=key,
        window_start=0.0,
        window_end=600.0,
        probe_count=probe_count,
        drop_rate=drop_rate,
        p50_us=250.0,
        p99_us=p99_us,
    )


class TestThresholds:
    def test_paper_defaults(self):
        thresholds = SlaThresholds()
        assert thresholds.max_drop_rate == 1e-3
        assert thresholds.max_p99_us == 5000.0
        assert thresholds.max_interdc_drop_rate == 2e-3
        assert thresholds.max_interdc_p99_us == 400_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SlaThresholds(max_drop_rate=0)
        with pytest.raises(ValueError):
            SlaThresholds(max_p99_us=-1)
        with pytest.raises(ValueError):
            SlaThresholds(min_probe_count=0)
        with pytest.raises(ValueError):
            SlaThresholds(max_interdc_drop_rate=0)
        with pytest.raises(ValueError):
            SlaThresholds(max_interdc_p99_us=-1)

    def test_scope_aware_limits(self):
        thresholds = SlaThresholds()
        assert thresholds.drop_limit_for("dc-pair") == 2e-3
        assert thresholds.p99_limit_for("dc-pair") == 400_000.0
        assert thresholds.drop_limit_for("datacenter") == 1e-3
        assert thresholds.p99_limit_for("pod") == 5000.0


class TestAlerting:
    def test_healthy_sla_fires_nothing(self):
        engine = AlertEngine()
        assert engine.evaluate([_sla()]) == []
        assert engine.history == []

    def test_drop_rate_violation(self):
        engine = AlertEngine()
        alerts = engine.evaluate([_sla(drop_rate=2e-3)])
        assert len(alerts) == 1
        assert alerts[0].metric == "drop_rate"
        assert alerts[0].value == 2e-3
        assert alerts[0].threshold == 1e-3

    def test_p99_violation(self):
        engine = AlertEngine()
        alerts = engine.evaluate([_sla(p99_us=7000.0)])
        assert alerts[0].metric == "p99_us"

    def test_both_metrics_fire_together(self):
        engine = AlertEngine()
        alerts = engine.evaluate([_sla(drop_rate=5e-3, p99_us=9000.0)])
        assert {alert.metric for alert in alerts} == {"drop_rate", "p99_us"}

    def test_small_windows_are_skipped(self):
        engine = AlertEngine(SlaThresholds(min_probe_count=100))
        assert engine.evaluate([_sla(drop_rate=1.0, probe_count=10)]) == []

    def test_none_p99_tolerated(self):
        sla = NetworkSla(
            scope=SlaScope.SERVER,
            key="s",
            window_start=0.0,
            window_end=600.0,
            probe_count=50,
            drop_rate=0.0,
            p50_us=None,
            p99_us=None,
        )
        assert AlertEngine().evaluate([sla]) == []

    def test_history_accumulates_and_filters(self):
        engine = AlertEngine()
        engine.evaluate([_sla(drop_rate=2e-3, key="dc0")])
        engine.evaluate([_sla(drop_rate=3e-3, key="dc1")])
        assert len(engine.history) == 2
        assert len(engine.alerts_for("dc0")) == 1

    def test_is_network_issue(self):
        """§4.3: Pingmesh answers the 'is it the network?' question."""
        engine = AlertEngine()
        assert engine.is_network_issue([_sla()]) is False
        assert engine.is_network_issue([_sla(p99_us=6000.0)]) is True

    def test_as_row(self):
        engine = AlertEngine()
        alert = engine.evaluate([_sla(drop_rate=2e-3)])[0]
        row = alert.as_row()
        assert row["metric"] == "drop_rate"
        assert row["t"] == 600.0
        assert row["event"] == "breach"
        assert row["plane"] == "batch"


class TestInterDcThresholds:
    """dc-pair SLAs are judged against the relaxed WAN envelope, never the
    5 ms local one."""

    def _pair_sla(self, **kw):
        kw.setdefault("scope", SlaScope.DC_PAIR)
        kw.setdefault("key", "dc0->dc1")
        return _sla(**kw)

    def test_healthy_wan_p99_fires_nothing(self):
        # ~205 ms is the worst healthy pair RTT in the region table — far
        # over the 5 ms local limit, comfortably under the 400 ms WAN one.
        engine = AlertEngine()
        assert engine.evaluate([self._pair_sla(p99_us=205_000.0)]) == []

    def test_wan_p99_violation_uses_interdc_limit(self):
        engine = AlertEngine()
        alerts = engine.evaluate([self._pair_sla(p99_us=450_000.0)])
        assert len(alerts) == 1
        assert alerts[0].metric == "p99_us"
        assert alerts[0].threshold == 400_000.0

    def test_wan_drop_rate_uses_interdc_limit(self):
        engine = AlertEngine()
        # 1.5e-3 breaches the local 1e-3 limit but not the WAN 2e-3 one.
        assert engine.evaluate([self._pair_sla(drop_rate=1.5e-3)]) == []
        alerts = engine.evaluate([self._pair_sla(drop_rate=3e-3)])
        assert alerts[0].metric == "drop_rate"
        assert alerts[0].threshold == 2e-3

    def test_intra_scope_still_uses_local_limits(self):
        engine = AlertEngine()
        alerts = engine.evaluate([_sla(p99_us=7000.0)])
        assert alerts[0].threshold == 5000.0

    def test_is_network_issue_respects_scope(self):
        engine = AlertEngine()
        healthy_wan = [self._pair_sla(p99_us=100_000.0)]
        assert engine.is_network_issue(healthy_wan) is False
        assert engine.is_network_issue([self._pair_sla(p99_us=500_000.0)]) is True


class TestEpisodes:
    def test_persistent_violation_fires_once(self):
        engine = AlertEngine()
        assert len(engine.evaluate([_sla(drop_rate=2e-3)])) == 1
        # The same violation, re-observed every window: no duplicate alert.
        assert engine.evaluate([_sla(drop_rate=3e-3)]) == []
        assert engine.evaluate([_sla(drop_rate=2e-3)]) == []
        assert len(engine.history) == 1
        assert len(engine.breaches()) == 1

    def test_recovery_pairs_with_its_breach(self):
        engine = AlertEngine()
        (breach,) = engine.evaluate([_sla(drop_rate=2e-3)])
        (recovery,) = engine.evaluate([_sla(drop_rate=1e-5)])
        assert breach.event == "breach"
        assert recovery.event == "recovery"
        assert (recovery.scope, recovery.key, recovery.metric) == (
            breach.scope,
            breach.key,
            breach.metric,
        )
        assert engine.active_episodes == {}
        # A fresh violation after recovery is a new episode.
        assert len(engine.evaluate([_sla(drop_rate=2e-3)])) == 1
        assert len(engine.breaches()) == 2

    def test_active_episodes_tracks_open_violations(self):
        engine = AlertEngine()
        engine.evaluate([_sla(drop_rate=2e-3, key="dc0")])
        engine.evaluate([_sla(p99_us=9000.0, key="dc1")])
        assert set(engine.active_episodes) == {
            ("datacenter", "dc0", "drop_rate"),
            ("datacenter", "dc1", "p99_us"),
        }

    def test_healthy_series_never_opens_an_episode(self):
        engine = AlertEngine()
        assert engine.update_episode(
            0.0, "datacenter", "dc0", "drop_rate", 0.0, 1e-3, violated=False
        ) is None
        assert engine.active_episodes == {}
        assert engine.history == []

    def test_update_episode_api(self):
        engine = AlertEngine()
        breach = engine.update_episode(
            5.0, "datacenter", "dc0", "failure_rate", 0.5, 1e-3,
            violated=True, plane="stream",
        )
        assert breach is not None and breach.plane == "stream"
        # Re-reporting the violated state is a no-op.
        assert engine.update_episode(
            6.0, "datacenter", "dc0", "failure_rate", 0.4, 1e-3,
            violated=True, plane="stream",
        ) is None
        recovery = engine.update_episode(
            7.0, "datacenter", "dc0", "failure_rate", 0.0, 1e-3,
            violated=False, plane="stream",
        )
        assert recovery is not None and recovery.event == "recovery"

    def test_episodes_are_shared_across_planes(self):
        """Whichever plane sees the violation first owns the breach; the
        other plane never duplicates it, and either may close it."""
        engine = AlertEngine()
        first = engine.update_episode(
            5.0, "datacenter", "dc0", "drop_rate", 2e-3, 1e-3,
            violated=True, plane="stream",
        )
        assert first.plane == "stream"
        # The batch plane sees the same violation minutes later: no event.
        assert engine.evaluate([_sla(drop_rate=2e-3)]) == []
        # Batch observes recovery first and closes the shared episode.
        (recovery,) = engine.evaluate([_sla(drop_rate=1e-5)])
        assert recovery.event == "recovery"
        assert recovery.plane == "batch"
        assert engine.active_episodes == {}

    def test_is_network_issue_is_pure(self):
        """§4.3's question must not be silenced by episode deduplication."""
        engine = AlertEngine()
        bad = [_sla(drop_rate=2e-3)]
        engine.evaluate(bad)  # the episode is now open (and deduplicated)
        assert engine.evaluate(bad) == []
        assert engine.is_network_issue(bad) is True  # still burning
        history = list(engine.history)
        engine.is_network_issue(bad)
        assert engine.history == history  # the check mutates nothing
