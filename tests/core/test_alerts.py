"""Tests for threshold alerting (§4.3)."""

import pytest

from repro.core.dsa.alerts import AlertEngine, SlaThresholds
from repro.core.dsa.sla import NetworkSla, SlaScope


def _sla(drop_rate=1e-5, p99_us=800.0, probe_count=1000, key="dc0"):
    return NetworkSla(
        scope=SlaScope.DATACENTER,
        key=key,
        window_start=0.0,
        window_end=600.0,
        probe_count=probe_count,
        drop_rate=drop_rate,
        p50_us=250.0,
        p99_us=p99_us,
    )


class TestThresholds:
    def test_paper_defaults(self):
        thresholds = SlaThresholds()
        assert thresholds.max_drop_rate == 1e-3
        assert thresholds.max_p99_us == 5000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SlaThresholds(max_drop_rate=0)
        with pytest.raises(ValueError):
            SlaThresholds(max_p99_us=-1)
        with pytest.raises(ValueError):
            SlaThresholds(min_probe_count=0)


class TestAlerting:
    def test_healthy_sla_fires_nothing(self):
        engine = AlertEngine()
        assert engine.evaluate([_sla()]) == []
        assert engine.history == []

    def test_drop_rate_violation(self):
        engine = AlertEngine()
        alerts = engine.evaluate([_sla(drop_rate=2e-3)])
        assert len(alerts) == 1
        assert alerts[0].metric == "drop_rate"
        assert alerts[0].value == 2e-3
        assert alerts[0].threshold == 1e-3

    def test_p99_violation(self):
        engine = AlertEngine()
        alerts = engine.evaluate([_sla(p99_us=7000.0)])
        assert alerts[0].metric == "p99_us"

    def test_both_metrics_fire_together(self):
        engine = AlertEngine()
        alerts = engine.evaluate([_sla(drop_rate=5e-3, p99_us=9000.0)])
        assert {alert.metric for alert in alerts} == {"drop_rate", "p99_us"}

    def test_small_windows_are_skipped(self):
        engine = AlertEngine(SlaThresholds(min_probe_count=100))
        assert engine.evaluate([_sla(drop_rate=1.0, probe_count=10)]) == []

    def test_none_p99_tolerated(self):
        sla = NetworkSla(
            scope=SlaScope.SERVER,
            key="s",
            window_start=0.0,
            window_end=600.0,
            probe_count=50,
            drop_rate=0.0,
            p50_us=None,
            p99_us=None,
        )
        assert AlertEngine().evaluate([sla]) == []

    def test_history_accumulates_and_filters(self):
        engine = AlertEngine()
        engine.evaluate([_sla(drop_rate=2e-3, key="dc0")])
        engine.evaluate([_sla(drop_rate=3e-3, key="dc1")])
        assert len(engine.history) == 2
        assert len(engine.alerts_for("dc0")) == 1

    def test_is_network_issue(self):
        """§4.3: Pingmesh answers the 'is it the network?' question."""
        engine = AlertEngine()
        assert engine.is_network_issue([_sla()]) is False
        assert engine.is_network_issue([_sla(p99_us=6000.0)]) is True

    def test_as_row(self):
        engine = AlertEngine()
        alert = engine.evaluate([_sla(drop_rate=2e-3)])[0]
        row = alert.as_row()
        assert row["metric"] == "drop_rate"
        assert row["t"] == 600.0
