"""Tests for ToR black-hole detection (§5.1)."""

import pytest

from repro.autopilot.device_manager import DeviceManager
from repro.core.dsa.blackhole import BlackholeDetector
from repro.netsim.topology import MultiDCTopology, TopologySpec


def _mesh_rows(
    n_pods=6,
    servers_per_pod=4,
    pods_per_podset=3,
    poisoned=(),
    drop_every=2,
    repeats=2,
    down_servers=(),
):
    """Synthesize a ToR-level probing mesh.

    Every server probes its host-index peer in every other pod (the §3.3.1
    pattern).  Pods in ``poisoned`` deterministically drop a fraction
    ``1/drop_every`` of their pairs, spread across destination pods, the way
    a TCAM-pattern black-hole does.  ``down_servers`` are (pod, idx) hosts
    whose every pair is dead (crashed server, not a black-hole).
    """
    poisoned = set(poisoned)
    down = set(down_servers)
    rows = []
    for src_pod in range(n_pods):
        for s in range(servers_per_pod):
            src = f"dc0/pod{src_pod}/srv{s}"
            for dst_pod in range(n_pods):
                if dst_pod == src_pod:
                    continue
                dst = f"dc0/pod{dst_pod}/srv{s}"
                dead = (
                    (src_pod, s) in down
                    or (dst_pod, s) in down
                    or (
                        src_pod in poisoned
                        and (s + dst_pod) % drop_every == 0
                    )
                    or (
                        dst_pod in poisoned
                        and (s + src_pod) % drop_every == 0
                    )
                )
                for _ in range(repeats):
                    rows.append(
                        {
                            "src": src,
                            "dst": dst,
                            "src_dc": 0,
                            "dst_dc": 0,
                            "src_podset": src_pod // pods_per_podset,
                            "dst_podset": dst_pod // pods_per_podset,
                            "src_pod": src_pod,
                            "dst_pod": dst_pod,
                            "success": not dead,
                            "rtt_us": 21e6 if dead else 250.0,
                        }
                    )
    return rows


class TestSymptomDetection:
    def test_healthy_mesh_no_candidates(self):
        report = BlackholeDetector().detect(_mesh_rows())
        assert report.candidates == []
        assert report.tors_to_reload == []
        assert report.podsets_escalated == []

    def test_blackholed_tor_detected(self):
        report = BlackholeDetector().detect(_mesh_rows(poisoned=[1]))
        assert [c.pod for c in report.candidates] == [1]
        candidate = report.candidates[0]
        assert candidate.score > 0.3
        assert report.tors_to_reload == [candidate]
        assert report.podsets_escalated == []

    def test_multiple_blackholes_all_found(self):
        """Several simultaneous black-holes in different podsets — the
        Figure 6 regime — must all localize."""
        report = BlackholeDetector().detect(_mesh_rows(poisoned=[0, 4]))
        assert sorted(c.pod for c in report.tors_to_reload) == [0, 4]

    def test_light_pattern_still_detected(self):
        """A black-hole hitting only ~25% of pairs is still deterministic
        per pair and must be found."""
        report = BlackholeDetector(score_threshold=0.2).detect(
            _mesh_rows(poisoned=[2], drop_every=4, servers_per_pod=8)
        )
        assert 2 in [c.pod for c in report.tors_to_reload]

    def test_flaky_pair_is_not_deterministic_symptom(self):
        """A pair with mixed outcomes is packet loss, not a black-hole."""
        rows = _mesh_rows()
        flaky = [row for row in rows if row["src_pod"] == 0][:4]
        for i, row in enumerate(flaky):
            row["success"] = i % 2 == 0
        assert BlackholeDetector().detect(rows).candidates == []

    def test_min_pair_probes_guard(self):
        """Single-probe evidence is not deterministic evidence."""
        rows = _mesh_rows(poisoned=[1], repeats=1)
        report = BlackholeDetector(min_pair_probes=2).detect(rows)
        assert report.candidates == []

    def test_down_server_is_not_a_blackhole(self):
        """A crashed server kills all its pairs; no ToR should be blamed."""
        report = BlackholeDetector().detect(
            _mesh_rows(down_servers=[(3, 0)])
        )
        assert report.tors_to_reload == []

    def test_down_server_next_to_real_blackhole(self):
        """The crashed server must not mask a genuine black-hole."""
        report = BlackholeDetector().detect(
            _mesh_rows(poisoned=[1], down_servers=[(3, 0)])
        )
        assert 1 in [c.pod for c in report.tors_to_reload]

    def test_empty_window(self):
        assert BlackholeDetector().detect([]).candidates == []

    def test_min_reporting_servers_guard(self):
        rows = [
            row
            for row in _mesh_rows(poisoned=[1])
            if not (row["src_pod"] == 1 and row["src"].endswith(("srv1", "srv2", "srv3")))
        ]
        report = BlackholeDetector(min_reporting_servers=2).detect(rows)
        assert 1 not in [c.pod for c in report.candidates]


class TestPodsetEscalation:
    def test_all_tors_affected_escalates(self):
        """'If all the ToRs in a podset experience the black-hole symptom,
        then the problem may be in the Leaf or Spine layer.'"""
        report = BlackholeDetector().detect(
            _mesh_rows(poisoned=[0, 1, 2])  # the whole of podset 0
        )
        assert (0, 0) in report.podsets_escalated
        assert not any(c.podset == 0 for c in report.tors_to_reload)

    def test_partial_podset_reloads_tors(self):
        report = BlackholeDetector().detect(_mesh_rows(poisoned=[0, 1]))
        assert report.podsets_escalated == []
        assert sorted(c.pod for c in report.tors_to_reload) == [0, 1]


class TestRepairFiling:
    def test_files_reload_requests(self):
        topology = MultiDCTopology.single(TopologySpec())
        dm = DeviceManager()
        detector = BlackholeDetector()
        report = detector.detect(
            _mesh_rows(n_pods=8, pods_per_podset=4, poisoned=[1]), t=100.0
        )
        filed = detector.file_repairs(report, dm, topology)
        assert filed == 1
        assert len(dm.pending) == 1
        assert dm.pending[0].action == "reload_switch"
        assert "black-hole score" in dm.pending[0].reason
        assert dm.pending[0].device_id == topology.dc(0).tors[1].device_id

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BlackholeDetector(score_threshold=0)
        with pytest.raises(ValueError):
            BlackholeDetector(min_pair_probes=0)
        with pytest.raises(ValueError):
            BlackholeDetector(dead_share_floor=0)
