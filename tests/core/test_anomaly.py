"""Tests for the EWMA anomaly detector."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dsa.anomaly import EwmaDetector, SeriesAnomalyTracker


class TestEwmaDetector:
    def test_constant_series_never_anomalous(self):
        detector = EwmaDetector()
        verdicts = [detector.observe(100.0) for _ in range(100)]
        assert not any(v.anomalous for v in verdicts)

    def test_warmup_suppresses_early_flags(self):
        detector = EwmaDetector(warmup_observations=10)
        detector.observe(100.0)
        verdict = detector.observe(1e9)  # wild, but still warming up
        assert not verdict.anomalous
        assert not verdict.warmed_up

    def test_spike_flagged_after_warmup(self):
        rng = np.random.default_rng(1)
        detector = EwmaDetector(z_threshold=4.0)
        for _ in range(50):
            detector.observe(float(rng.normal(100.0, 5.0)))
        verdict = detector.observe(200.0)
        assert verdict.anomalous
        assert verdict.z_score > 4.0

    def test_anomalies_do_not_poison_the_baseline(self):
        rng = np.random.default_rng(2)
        detector = EwmaDetector()
        for _ in range(50):
            detector.observe(float(rng.normal(100.0, 5.0)))
        for _ in range(5):
            assert detector.observe(500.0).anomalous  # keeps firing

    def test_baseline_adapts_to_gradual_drift(self):
        detector = EwmaDetector(alpha=0.3, z_threshold=6.0)
        value = 100.0
        flags = []
        for _ in range(200):
            value *= 1.01  # 1% per window drift
            flags.append(detector.observe(value).anomalous)
        assert not any(flags)  # slow drift is the new normal

    def test_scale_invariance(self):
        """The same relative excursion flags at any magnitude."""
        for scale in (1e-5, 1.0, 1e6):
            rng = np.random.default_rng(3)
            detector = EwmaDetector()
            for _ in range(50):
                detector.observe(float(rng.normal(1.0, 0.05)) * scale)
            assert detector.observe(3.0 * scale).anomalous

    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaDetector(alpha=0)
        with pytest.raises(ValueError):
            EwmaDetector(z_threshold=0)
        with pytest.raises(ValueError):
            EwmaDetector(warmup_observations=1)

    @given(st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=1, max_size=100))
    def test_never_crashes_and_counts(self, values):
        detector = EwmaDetector()
        for value in values:
            verdict = detector.observe(value)
            assert verdict.std >= 0
        assert detector.observations == len(values)


class TestSeriesAnomalyTracker:
    def _rows(self, n, p99=900.0, drop=2e-5, key="search"):
        return [
            {
                "t": float(i * 3600),
                "scope": "service",
                "key": key,
                "drop_rate": drop,
                "p99_us": p99,
            }
            for i in range(n)
        ]

    def test_quiet_series_no_anomalies(self):
        tracker = SeriesAnomalyTracker()
        assert tracker.observe_sla_rows(self._rows(48)) == []

    def test_incident_window_flagged(self):
        tracker = SeriesAnomalyTracker()
        tracker.observe_sla_rows(self._rows(48))
        incident = {
            "t": 48 * 3600.0,
            "scope": "service",
            "key": "search",
            "drop_rate": 2e-3,  # the Figure 7 jump
            "p99_us": 900.0,
        }
        found = tracker.observe_sla_rows([incident])
        assert len(found) == 1
        assert found[0]["metric"] == "drop_rate"
        assert found[0]["z_score"] > 4

    def test_series_are_independent(self):
        """One service's baseline must not judge another's."""
        tracker = SeriesAnomalyTracker()
        tracker.observe_sla_rows(self._rows(48, p99=300.0, key="fast-svc"))
        tracker.observe_sla_rows(self._rows(48, p99=900.0, key="slow-svc"))
        # 900us is normal for slow-svc even though it is 3x fast-svc.
        more = self._rows(1, p99=900.0, key="slow-svc")
        more[0]["t"] = 1e6
        assert tracker.observe_sla_rows(more) == []

    def test_none_p99_skipped(self):
        tracker = SeriesAnomalyTracker()
        rows = self._rows(5)
        for row in rows:
            row["p99_us"] = None
        assert tracker.observe_sla_rows(rows) == []

    def test_anomaly_history_accumulates(self):
        tracker = SeriesAnomalyTracker()
        tracker.observe_sla_rows(self._rows(48))
        spike = self._rows(1, drop=5e-3)
        spike[0]["t"] = 1e6
        tracker.observe_sla_rows(spike)
        assert len(tracker.anomalies) == 1
