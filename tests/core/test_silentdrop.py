"""Tests for silent-drop detection + traceroute localization (§5.2)."""

import pytest

from repro.autopilot.device_manager import DeviceManager
from repro.core.dsa.silentdrop import SilentDropDetector
from repro.netsim.fabric import Fabric
from repro.netsim.faults import SilentRandomDrop
from repro.netsim.topology import TopologySpec


def _row(src, dst, success=True, rtt_us=250.0, syn_drops=0, src_ps=0, dst_ps=1, dc=0):
    return {
        "src": src,
        "dst": dst,
        "src_dc": dc,
        "dst_dc": dc,
        "src_podset": src_ps,
        "dst_podset": dst_ps,
        "success": success,
        "rtt_us": rtt_us,
        "syn_drops": syn_drops,
    }


def _healthy_rows(n=500):
    return [_row(f"s{i % 20}", f"d{i % 17}") for i in range(n)]


def _incident_rows(n=500, drop_every=50):
    """Cross-podset rows with ~2% retransmit signatures, intra fine."""
    rows = []
    for i in range(n):
        if i % drop_every == 0:
            rows.append(
                _row(f"s{i % 5}", f"d{i % 4}", rtt_us=3.1e6, syn_drops=1)
            )
        else:
            rows.append(_row(f"s{i % 20}", f"d{i % 17}"))
    rows += [_row(f"a{i % 10}", f"b{i % 9}", src_ps=0, dst_ps=0) for i in range(200)]
    return rows


class TestDetection:
    def test_healthy_window_no_incident(self):
        assert SilentDropDetector().detect(_healthy_rows()) == []

    def test_elevated_drop_rate_detected(self):
        incidents = SilentDropDetector().detect(_incident_rows(), t=100.0)
        assert len(incidents) == 1
        incident = incidents[0]
        assert incident.measured_drop_rate > 5e-4
        assert incident.dc == 0

    def test_spine_tier_suspected_when_cross_podset_only(self):
        incidents = SilentDropDetector().detect(_incident_rows())
        assert incidents[0].suspected_tier == "spine"

    def test_leaf_tier_suspected_when_intra_podset_affected(self):
        rows = [
            _row(f"s{i % 8}", f"d{i % 7}", src_ps=0, dst_ps=0,
                 rtt_us=3.1e6 if i % 40 == 0 else 250.0,
                 syn_drops=1 if i % 40 == 0 else 0)
            for i in range(400)
        ]
        incidents = SilentDropDetector().detect(rows)
        assert incidents
        assert incidents[0].suspected_tier == "leaf-or-tor"

    def test_affected_pairs_ranked_by_evidence(self):
        rows = _healthy_rows(100)
        # "hot" pair shows repeated retransmit signatures among mostly-
        # healthy probes — the paper's "1%-2% random packet drops" shape.
        rows += [_row("hot-src", "hot-dst", rtt_us=3.2e6, syn_drops=1)] * 20
        rows += [_row("hot-src", "hot-dst")] * 30
        rows += [_row("warm-src", "warm-dst", success=False, rtt_us=21e6)] * 3
        rows += [_row("warm-src", "warm-dst")] * 5
        incidents = SilentDropDetector(incident_drop_rate=1e-3).detect(rows)
        assert incidents
        assert incidents[0].affected_pairs[0] == ("hot-src", "hot-dst")

    def test_deterministic_loss_pairs_are_not_traceroute_candidates(self):
        """A pair whose every probe fails (or always carries a signature)
        is black-hole-shaped evidence — §5.1's detector owns it, and the
        silent-drop watch must not RMA a reload-fixable switch over it."""
        rows = _healthy_rows(100)
        rows += [_row("dead-src", "dead-dst", success=False, rtt_us=21e6)] * 30
        rows += [_row("sig-src", "sig-dst", rtt_us=3.2e6, syn_drops=1)] * 30
        # One genuinely lossy-but-alive pair still qualifies.
        rows += [_row("lossy-src", "lossy-dst", rtt_us=3.2e6, syn_drops=1)] * 2
        rows += [_row("lossy-src", "lossy-dst")] * 20
        incidents = SilentDropDetector(incident_drop_rate=1e-3).detect(rows)
        assert incidents
        assert incidents[0].affected_pairs == [("lossy-src", "lossy-dst")]

    def test_loss_ratio_validation(self):
        with pytest.raises(ValueError):
            SilentDropDetector(max_pair_loss_ratio=0.0)
        with pytest.raises(ValueError):
            SilentDropDetector(max_pair_loss_ratio=1.5)

    def test_per_dc_isolation(self):
        """'only one data center was affected, and the other data centers
        were fine.'"""
        rows = _incident_rows()
        rows += [_row(f"x{i}", f"y{i}", dc=1) for i in range(300)]
        incidents = SilentDropDetector().detect(rows)
        assert [incident.dc for incident in incidents] == [0]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SilentDropDetector(incident_drop_rate=0)
        with pytest.raises(ValueError):
            SilentDropDetector(max_traceroute_pairs=0)


class TestLocalizationEndToEnd:
    def test_localizes_the_injected_spine(self):
        """The full §5.2 loop against the simulator."""
        fabric = Fabric.single_dc(TopologySpec(n_spines=4), seed=11)
        dc = fabric.topology.dc(0)
        spine = dc.spines[2]
        fabric.faults.inject(
            SilentRandomDrop(switch_id=spine.device_id, drop_prob=0.05)
        )
        # Gather probe evidence: cross-podset probes, some crossing spine2.
        detector = SilentDropDetector(incident_drop_rate=5e-4)
        rows = []
        for i in range(60):
            src = dc.servers_in_podset(0)[i % 16]
            dst = dc.servers_in_podset(1)[(i * 7) % 16]
            for _ in range(4):
                result = fabric.probe(src, dst, t=float(i))
                rows.append(
                    {
                        "src": result.src,
                        "dst": result.dst,
                        "src_dc": 0,
                        "dst_dc": 0,
                        "src_podset": 0,
                        "dst_podset": 1,
                        "success": result.success,
                        "rtt_us": result.rtt_s * 1e6,
                        "syn_drops": result.syn_drops,
                    }
                )
        incidents = detector.detect(rows, t=60.0)
        assert incidents, "the 5% spine dropper must push drop rate over threshold"
        suspect = detector.localize(incidents[0], fabric)
        assert suspect == spine.device_id

    def test_rma_filed_after_localization(self):
        dm = DeviceManager()
        detector = SilentDropDetector()
        incidents = detector.detect(_incident_rows(), t=5.0)
        incident = incidents[0]
        incident.localized_switch = "dc0/spine1"
        incident.traceroute_votes = {"dc0/spine1": 6}
        assert detector.file_rma(incident, dm)
        assert dm.pending[0].action == "rma_switch"
        assert "silent random drops" in dm.pending[0].reason

    def test_no_rma_without_localization(self):
        dm = DeviceManager()
        detector = SilentDropDetector()
        incident = detector.detect(_incident_rows(), t=5.0)[0]
        assert detector.file_rma(incident, dm) is False
        assert dm.pending == []
