"""Tests for the canned DSA queries."""

import pytest

from repro.core.dsa.database import ResultsDatabase
from repro.core.dsa.queries import DsaQueries


@pytest.fixture()
def db():
    db = ResultsDatabase()
    for hour in range(1, 25):
        t = hour * 3600.0
        incident = hour == 24
        db.insert(
            "sla_hourly",
            [
                {
                    "t": t,
                    "scope": "datacenter",
                    "key": "dc0",
                    "probe_count": 10_000,
                    "drop_rate": 2e-3 if incident else 2e-5,
                    "p50_us": 260.0,
                    "p99_us": 950.0,
                },
                {
                    "t": t,
                    "scope": "pod",
                    "key": "dc0/pod1",
                    "probe_count": 500,
                    "drop_rate": 5e-5,
                    "p50_us": 250.0,
                    "p99_us": 900.0,
                },
                {
                    "t": t,
                    "scope": "pod",
                    "key": "dc0/pod2",
                    "probe_count": 500,
                    "drop_rate": 1e-5,
                    "p50_us": 250.0,
                    "p99_us": 1200.0,
                },
                {
                    "t": t,
                    "scope": "pod",
                    "key": "dc0/pod3",
                    "probe_count": 10,  # statistically empty
                    "drop_rate": 1.0,
                    "p50_us": 250.0,
                    "p99_us": 900.0,
                },
            ],
        )
    db.insert(
        "patterns_10min",
        [
            {"t": 86_000.0, "dc": 0, "pattern": "spine-failure", "affected_podsets": [0, 1]},
            {"t": 85_000.0, "dc": 0, "pattern": "normal", "affected_podsets": []},
        ],
    )
    db.insert(
        "silentdrop_incidents",
        [
            {
                "t": 86_100.0,
                "dc": 0,
                "measured_drop_rate": 2e-3,
                "suspected_tier": "spine",
                "localized_switch": "dc0/spine1",
            }
        ],
    )
    db.insert(
        "anomalies",
        [
            {
                "t": 86_200.0,
                "scope": "datacenter",
                "key": "dc0",
                "metric": "drop_rate",
                "value": 2e-3,
                "baseline_mean": 2e-5,
                "z_score": 40.0,
            }
        ],
    )
    return db


@pytest.fixture()
def queries(db):
    return DsaQueries(db)


class TestSlaQueries:
    def test_latest_sla(self, queries):
        row = queries.latest_sla("datacenter", "dc0")
        assert row["t"] == 24 * 3600.0
        assert row["drop_rate"] == 2e-3

    def test_latest_sla_missing_key(self, queries):
        assert queries.latest_sla("datacenter", "dc9") is None

    def test_sla_series_ordered(self, queries):
        series = queries.sla_series("datacenter", "dc0", "drop_rate")
        assert len(series) == 24
        assert series[0][0] < series[-1][0]

    def test_sla_series_since_filter(self, queries):
        series = queries.sla_series(
            "datacenter", "dc0", "p99_us", since_t=20 * 3600.0
        )
        assert len(series) == 5

    def test_worst_by_filters_small_windows(self, queries):
        worst = queries.worst_by("pod", metric="drop_rate", k=2, min_probes=100)
        assert [row["key"] for row in worst] == ["dc0/pod1", "dc0/pod2"]

    def test_worst_by_latency(self, queries):
        worst = queries.worst_by("pod", metric="p99_us", k=1, min_probes=100)
        assert worst[0]["key"] == "dc0/pod2"

    def test_worst_by_empty_table(self):
        assert DsaQueries(ResultsDatabase()).worst_by("pod") == []


class TestTrends:
    def test_incident_ratio_visible(self, queries):
        trend = queries.drop_rate_trend("datacenter", "dc0", windows=23)
        assert trend["current"] == 2e-3
        assert trend["trailing_mean"] == pytest.approx(2e-5)
        assert trend["ratio"] == pytest.approx(100.0)

    def test_quiet_key_ratio_near_one(self, queries):
        trend = queries.drop_rate_trend("pod", "dc0/pod1")
        assert trend["ratio"] == pytest.approx(1.0)

    def test_insufficient_history(self, queries):
        assert queries.drop_rate_trend("pod", "dc0/ghost") is None


class TestOpenQuestions:
    def test_everything_surfaces(self, queries):
        questions = queries.open_questions(t=86_400.0, lookback_s=3600.0)
        text = "\n".join(questions)
        assert "spine-failure" in text
        assert "dc0/spine1" in text
        assert "anomaly" in text
        # The normal pattern is not a question.
        assert "normal" not in text

    def test_quiet_period_is_empty(self, queries):
        assert queries.open_questions(t=40_000.0, lookback_s=600.0) == []

    def test_pattern_history_newest_first(self, queries):
        history = queries.pattern_history(0)
        assert history[0]["pattern"] == "spine-failure"
        assert len(history) == 2
