"""Lazy pinglist generation: byte parity with eager, O(changed) work.

The lazy controller must be *invisible* to agents: every XML it serves is
byte-identical to what an eager regenerate-everything controller would
have produced at the same instant.  A fresh :class:`PingmeshGenerator`
over the same topology is the eager ground truth here — no memo, no
frozen snapshot carried over, just the three-level graph recomputed from
scratch at every call.

``entries_computed`` is the work meter: regeneration and recovery must do
O(1) graph work until agents actually GET, pure generation bumps must
re-stamp cached entries without recomputation, and growth must recompute
only the DCs it dirtied.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.controller.generator import PingmeshGenerator
from repro.core.controller.service import (
    PinglistNotFoundError,
    PingmeshControllerService,
)
from repro.netsim.topology import MultiDCTopology, TopologySpec

_SPEC = TopologySpec(n_podsets=2, pods_per_podset=2, servers_per_pod=4, n_spines=4)


def _eager_xml(service, server_id):
    """What an eager controller would serve right now: a from-scratch
    generator at the service's generation and stamp."""
    fresh = PingmeshGenerator(service.topology, service.generator.config)
    fresh.refresh_inter_dc_snapshot()
    return fresh.generate_for(
        server_id,
        generation=service.generation,
        t=service.last_generated_t,
    ).to_xml()


def _assert_parity(service):
    replica = next(iter(service.replicas.values()))
    for server in service.topology.all_servers():
        assert replica.serve(server.device_id) == _eager_xml(
            service, server.device_id
        )


class TestLazyEagerByteParity:
    def test_parity_after_initial_regenerate(self):
        topology = MultiDCTopology.single(_SPEC)
        service = PingmeshControllerService(topology)
        service.regenerate(t=10.0)
        _assert_parity(service)

    def test_parity_across_growth(self):
        topology = MultiDCTopology.single(_SPEC)
        service = PingmeshControllerService(topology)
        service.regenerate(t=10.0)
        _assert_parity(service)
        topology.dc(0).add_podset()
        service.regenerate(t=20.0, changed_dcs=(0,))
        _assert_parity(service)

    def test_parity_across_generation_bumps(self):
        topology = MultiDCTopology.single(_SPEC)
        service = PingmeshControllerService(topology)
        service.regenerate(t=10.0)
        _assert_parity(service)
        # Pure bumps (no topology delta): re-stamped XML, same graph.
        service.regenerate(t=20.0, changed_dcs=())
        service.regenerate(t=30.0, changed_dcs=())
        _assert_parity(service)

    def test_parity_across_kill_switch_cycle(self):
        topology = MultiDCTopology.single(_SPEC)
        service = PingmeshControllerService(topology)
        service.regenerate(t=10.0)
        server_id = topology.all_servers()[0].device_id
        service.remove_all_pinglists()
        with pytest.raises(PinglistNotFoundError):
            service.get_pinglist(server_id)
        service.regenerate(t=50.0, changed_dcs=())
        _assert_parity(service)

    def test_parity_multi_dc(self):
        topology = MultiDCTopology((_SPEC, replace(_SPEC, name="dc1")))
        service = PingmeshControllerService(topology)
        service.regenerate(t=10.0)
        _assert_parity(service)

    def test_frozen_inter_dc_selection_survives_liveness_drift(self):
        """Liveness drift between regenerate and a lazy GET must not leak
        into the XML: the selection is frozen at regeneration time, so a
        pivot going down later changes nothing until the next regenerate."""
        topology = MultiDCTopology((_SPEC, replace(_SPEC, name="dc1")))
        service = PingmeshControllerService(topology)
        service.regenerate(t=10.0)
        pivot = service.generator.inter_dc_selection(topology.dc(0))[0]
        observer = [
            s
            for s in service.generator.inter_dc_selection(topology.dc(1))
            if s.device_id != pivot.device_id
        ][0]
        before = service.replicas["controller0"].serve(observer.device_id)
        pivot_server = topology.server(pivot.device_id)
        pivot_server.bring_down()
        # A cold replica (recovery) renders lazily *after* the drift — and
        # must still serve the regeneration-time view, bytes and all.
        service.fail_replica("controller1")
        service.recover_replica("controller1")
        assert service.replicas["controller1"].serve(observer.device_id) == before
        assert pivot.device_id in before
        # The next regeneration adopts the new liveness: the downed pivot
        # leaves the selection and the observer's target list changes.
        service.regenerate(t=20.0, changed_dcs=())
        after = service.replicas["controller0"].serve(observer.device_id)
        assert pivot.device_id not in after
        pivot_server.bring_up()


class TestGenerationWorkMeter:
    def test_regenerate_does_no_graph_work(self):
        topology = MultiDCTopology.single(_SPEC)
        service = PingmeshControllerService(topology)
        service.regenerate(t=10.0)
        assert service.generator.entries_computed == 0

    def test_first_get_computes_exactly_one(self):
        topology = MultiDCTopology.single(_SPEC)
        service = PingmeshControllerService(topology)
        service.regenerate(t=10.0)
        server_id = topology.all_servers()[0].device_id
        service.get_pinglist(server_id)
        assert service.generator.entries_computed == 1
        # The entry memo is shared across replicas: the other replica
        # rendering the same server re-stamps, never recomputes.
        for replica in service.replicas.values():
            replica.serve(server_id)
        assert service.generator.entries_computed == 1

    def test_pure_bump_reuses_the_memo(self):
        topology = MultiDCTopology.single(_SPEC)
        service = PingmeshControllerService(topology)
        service.regenerate(t=10.0)
        for server in topology.all_servers():
            service.get_pinglist(server.device_id)
        computed = service.generator.entries_computed
        assert computed == topology.n_servers
        service.regenerate(t=20.0, changed_dcs=())
        for server in topology.all_servers():
            service.get_pinglist(server.device_id)
        assert service.generator.entries_computed == computed

    def test_growth_recomputes_only_the_changed_dc(self):
        topology = MultiDCTopology((_SPEC, replace(_SPEC, name="dc1")))
        service = PingmeshControllerService(topology)
        service.regenerate(t=10.0)
        for server in topology.all_servers():
            service.get_pinglist(server.device_id)
        computed = service.generator.entries_computed
        topology.dc(0).add_podset()
        service.regenerate(t=20.0, changed_dcs=(0,))
        for server in topology.all_servers():
            service.get_pinglist(server.device_id)
        # dc0 recomputed (grown); dc1 came from the memo, except any
        # inter-DC participants the refreshed selection snapshot moved.
        moved_dc1 = {
            sid
            for sid, _ip in service.generator._inter_dc_frozen.get(1, ())
        }
        expected = computed + topology.dc(0).spec.n_servers + len(moved_dc1)
        assert service.generator.entries_computed <= expected
        assert (
            service.generator.entries_computed
            >= computed + topology.dc(0).spec.n_servers
        )


class TestRecoveryIsO1At16k:
    """The satellite regression: kill-switch regeneration and replica
    recovery at 16k servers do O(1) generation work until agents GET."""

    SPEC_16K = TopologySpec(
        n_podsets=16, pods_per_podset=32, servers_per_pod=32, n_spines=32
    )

    def test_regenerate_fail_recover_compute_nothing(self):
        topology = MultiDCTopology.single(self.SPEC_16K)
        assert topology.n_servers == 16_384
        service = PingmeshControllerService(topology)
        service.regenerate(t=10.0)
        service.fail_replica("controller0")
        service.regenerate(t=20.0, changed_dcs=())
        service.recover_replica("controller0")
        service.remove_all_pinglists()
        service.regenerate(t=30.0, changed_dcs=())
        assert service.generator.entries_computed == 0
        # The first GET does exactly one server's graph work.
        server_id = topology.all_servers()[0].device_id
        assert service.replicas["controller0"].serve(server_id)
        assert service.generator.entries_computed == 1
