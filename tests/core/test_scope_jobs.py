"""Tests for the DSA SCOPE jobs."""

import pytest

from repro.core.dsa.records import LATENCY_STREAM
from repro.core.dsa.scope_jobs import (
    job_dc_drop_table,
    job_podpair_latency,
    job_scope_drop_rates,
    window_rows,
)
from repro.cosmos.store import CosmosStore


def _record(t, src_pod, dst_pod, rtt_us=250.0, success=True, dc=0):
    return {
        "t": t,
        "src": f"dc{dc}/s{src_pod}",
        "dst": f"dc{dc}/d{dst_pod}",
        "src_dc": dc,
        "dst_dc": dc,
        "src_podset": src_pod // 2,
        "dst_podset": dst_pod // 2,
        "src_pod": src_pod,
        "dst_pod": dst_pod,
        "success": success,
        "rtt_us": rtt_us,
        "syn_drops": 0,
    }


@pytest.fixture()
def store():
    store = CosmosStore()
    records = []
    for t in range(0, 600, 60):
        for src_pod in range(4):
            for dst_pod in range(4):
                records.append(_record(float(t), src_pod, dst_pod))
    # One 3-second (one-drop) probe in pod pair (0, 1).
    records.append(_record(30.0, 0, 1, rtt_us=3.1e6))
    store.append(LATENCY_STREAM, records, t=600.0)
    return store


class TestWindowRows:
    def test_filters_by_time(self, store):
        rows = window_rows(store, 0.0, 120.0)
        assert all(0.0 <= row["t"] < 120.0 for row in rows)
        assert len(rows) == 2 * 16 + 1

    def test_empty_store(self):
        assert len(window_rows(CosmosStore(), 0.0, 600.0)) == 0

    def test_bad_window_rejected(self, store):
        with pytest.raises(ValueError):
            window_rows(store, 100.0, 100.0)


class TestPodpairJob:
    def test_one_row_per_pair(self, store):
        rows = job_podpair_latency(store, 0.0, 600.0)
        assert len(rows) == 16
        pair_keys = {(row["src_pod"], row["dst_pod"]) for row in rows}
        assert len(pair_keys) == 16

    def test_metrics_present(self, store):
        rows = job_podpair_latency(store, 0.0, 600.0)
        row = next(r for r in rows if r["src_pod"] == 0 and r["dst_pod"] == 1)
        assert row["probe_count"] == 11
        assert row["p50_us"] == pytest.approx(250.0)
        assert row["drop_rate"] == pytest.approx(1 / 11)
        assert row["t"] == 600.0

    def test_dc_filter(self, store):
        store.append(LATENCY_STREAM, [_record(10.0, 0, 1, dc=1)], t=600.0)
        rows = job_podpair_latency(store, 0.0, 600.0, dc=1)
        assert len(rows) == 1
        assert rows[0]["src_dc"] == 1

    def test_empty_window(self, store):
        assert job_podpair_latency(store, 10_000.0, 10_600.0) == []


class TestDropRateJobs:
    def test_intra_vs_inter_split(self, store):
        rows = job_scope_drop_rates(store, 0.0, 600.0)
        assert len(rows) == 1
        row = rows[0]
        # Diagonal pairs are intra-pod (4 pods x 10 rounds).
        assert row["intra_pod_probes"] == 40
        assert row["inter_pod_probes"] == 121
        assert row["intra_pod_drop_rate"] == 0.0
        assert row["inter_pod_drop_rate"] == pytest.approx(1 / 121)

    def test_dc_names_attached(self, store):
        rows = job_dc_drop_table(store, 0.0, 600.0, ["DC1 (US West)"])
        assert rows[0]["dc_name"] == "DC1 (US West)"

    def test_unknown_dc_index_gets_fallback_name(self, store):
        store.append(LATENCY_STREAM, [_record(10.0, 0, 0, dc=3)], t=600.0)
        rows = job_dc_drop_table(store, 0.0, 600.0, ["only-one"])
        names = {row["dc_name"] for row in rows}
        assert "dc3" in names
