"""Tests for network SLA tracking at macro and micro scopes."""

import pytest

from repro.core.dsa.sla import (
    NetworkSla,
    ServiceDefinition,
    SlaScope,
    SlaTracker,
    compute_sla,
)


def _row(src="dc0/s0", dst="dc0/s1", rtt_us=250.0, success=True, pod=0, podset=0, dc=0):
    return {
        "src": src,
        "dst": dst,
        "src_dc": dc,
        "dst_dc": dc,
        "src_podset": podset,
        "dst_podset": podset,
        "src_pod": pod,
        "dst_pod": pod,
        "success": success,
        "rtt_us": rtt_us,
    }


class TestComputeSla:
    def test_metrics(self):
        rows = [_row(rtt_us=100.0 + i) for i in range(100)]
        rows.append(_row(rtt_us=3.1e6))  # one drop signature
        sla = compute_sla(rows, SlaScope.POD, "dc0/pod0", 0.0, 600.0)
        assert sla.probe_count == 101
        assert sla.drop_rate == pytest.approx(1 / 101)
        assert 100.0 <= sla.p50_us <= 200.0
        assert sla.p99_us > sla.p50_us

    def test_all_failed_window(self):
        rows = [_row(success=False, rtt_us=21e6)] * 5
        sla = compute_sla(rows, SlaScope.SERVER, "s", 0.0, 600.0)
        assert sla.p50_us is None
        assert sla.drop_rate == 0.0

    def test_as_row_shape(self):
        sla = compute_sla([_row()], SlaScope.DATACENTER, "dc0", 0.0, 600.0)
        row = sla.as_row()
        assert row["scope"] == "datacenter"
        assert row["t"] == 600.0


class TestScopeTracking:
    @pytest.fixture()
    def rows(self):
        rows = []
        for pod in range(4):
            podset = pod // 2
            for i in range(10):
                rows.append(
                    _row(
                        src=f"dc0/s{pod}-{i}",
                        pod=pod,
                        podset=podset,
                        rtt_us=200.0 + pod * 50,
                    )
                )
        return rows

    def test_pod_scope(self, rows):
        slas = SlaTracker().track_scope(rows, SlaScope.POD, 0.0, 600.0)
        assert len(slas) == 4
        assert {sla.key for sla in slas} == {f"dc0/pod{p}" for p in range(4)}

    def test_podset_scope(self, rows):
        slas = SlaTracker().track_scope(rows, SlaScope.PODSET, 0.0, 600.0)
        assert len(slas) == 2

    def test_datacenter_scope(self, rows):
        slas = SlaTracker().track_scope(rows, SlaScope.DATACENTER, 0.0, 600.0)
        assert len(slas) == 1
        assert slas[0].probe_count == 40

    def test_server_scope(self, rows):
        slas = SlaTracker().track_scope(rows, SlaScope.SERVER, 0.0, 600.0)
        assert len(slas) == 40

    def test_results_sorted_by_key(self, rows):
        slas = SlaTracker().track_scope(rows, SlaScope.POD, 0.0, 600.0)
        assert [sla.key for sla in slas] == sorted(sla.key for sla in slas)


class TestServiceTracking:
    def test_service_mapping(self):
        """§1: SLAs per service by mapping services to their servers."""
        search = ServiceDefinition.of("search", ["dc0/a", "dc0/b"])
        storage = ServiceDefinition.of("storage", ["dc0/c"])
        tracker = SlaTracker([search, storage])
        rows = [
            _row(src="dc0/a", rtt_us=100.0),
            _row(src="dc0/b", rtt_us=200.0),
            _row(src="dc0/c", rtt_us=900.0),
            _row(src="dc0/unmapped", rtt_us=5000.0),
        ]
        slas = {sla.key: sla for sla in tracker.track_services(rows, 0.0, 600.0)}
        assert set(slas) == {"search", "storage"}
        assert slas["search"].probe_count == 2
        assert slas["storage"].p50_us == pytest.approx(900.0)

    def test_service_without_traffic_omitted(self):
        tracker = SlaTracker([ServiceDefinition.of("idle", ["dc0/zz"])])
        assert tracker.track_services([_row()], 0.0, 600.0) == []

    def test_duplicate_service_rejected(self):
        tracker = SlaTracker([ServiceDefinition.of("a", ["x"])])
        with pytest.raises(ValueError):
            tracker.register_service(ServiceDefinition.of("a", ["y"]))

    def test_empty_service_rejected(self):
        with pytest.raises(ValueError):
            ServiceDefinition.of("empty", [])

    def test_track_all_covers_every_scope(self):
        tracker = SlaTracker([ServiceDefinition.of("svc", ["dc0/s0-0"])])
        rows = [_row(src="dc0/s0-0")]
        slas = tracker.track_all(rows, 0.0, 600.0)
        scopes = {sla.scope for sla in slas}
        assert scopes == {
            SlaScope.DATACENTER,
            SlaScope.PODSET,
            SlaScope.POD,
            SlaScope.SERVER,
            SlaScope.SERVICE,
        }
