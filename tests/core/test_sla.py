"""Tests for network SLA tracking at macro and micro scopes."""

import pytest

from repro.core.dsa.sla import (
    NetworkSla,
    ServiceDefinition,
    SlaScope,
    SlaTracker,
    compute_sla,
)


def _row(
    src="dc0/s0",
    dst="dc0/s1",
    rtt_us=250.0,
    success=True,
    pod=0,
    podset=0,
    dc=0,
    dst_dc=None,
):
    return {
        "src": src,
        "dst": dst,
        "src_dc": dc,
        "dst_dc": dc if dst_dc is None else dst_dc,
        "src_podset": podset,
        "dst_podset": podset,
        "src_pod": pod,
        "dst_pod": pod,
        "success": success,
        "rtt_us": rtt_us,
    }


class TestComputeSla:
    def test_metrics(self):
        rows = [_row(rtt_us=100.0 + i) for i in range(100)]
        rows.append(_row(rtt_us=3.1e6))  # one drop signature
        sla = compute_sla(rows, SlaScope.POD, "dc0/pod0", 0.0, 600.0)
        assert sla.probe_count == 101
        assert sla.drop_rate == pytest.approx(1 / 101)
        assert 100.0 <= sla.p50_us <= 200.0
        assert sla.p99_us > sla.p50_us

    def test_all_failed_window(self):
        rows = [_row(success=False, rtt_us=21e6)] * 5
        sla = compute_sla(rows, SlaScope.SERVER, "s", 0.0, 600.0)
        assert sla.p50_us is None
        assert sla.drop_rate == 0.0

    def test_as_row_shape(self):
        sla = compute_sla([_row()], SlaScope.DATACENTER, "dc0", 0.0, 600.0)
        row = sla.as_row()
        assert row["scope"] == "datacenter"
        assert row["t"] == 600.0


class TestScopeTracking:
    @pytest.fixture()
    def rows(self):
        rows = []
        for pod in range(4):
            podset = pod // 2
            for i in range(10):
                rows.append(
                    _row(
                        src=f"dc0/s{pod}-{i}",
                        pod=pod,
                        podset=podset,
                        rtt_us=200.0 + pod * 50,
                    )
                )
        return rows

    def test_pod_scope(self, rows):
        slas = SlaTracker().track_scope(rows, SlaScope.POD, 0.0, 600.0)
        assert len(slas) == 4
        assert {sla.key for sla in slas} == {f"dc0/pod{p}" for p in range(4)}

    def test_podset_scope(self, rows):
        slas = SlaTracker().track_scope(rows, SlaScope.PODSET, 0.0, 600.0)
        assert len(slas) == 2

    def test_datacenter_scope(self, rows):
        slas = SlaTracker().track_scope(rows, SlaScope.DATACENTER, 0.0, 600.0)
        assert len(slas) == 1
        assert slas[0].probe_count == 40

    def test_server_scope(self, rows):
        slas = SlaTracker().track_scope(rows, SlaScope.SERVER, 0.0, 600.0)
        assert len(slas) == 40

    def test_results_sorted_by_key(self, rows):
        slas = SlaTracker().track_scope(rows, SlaScope.POD, 0.0, 600.0)
        assert [sla.key for sla in slas] == sorted(sla.key for sla in slas)


class TestServiceTracking:
    def test_service_mapping(self):
        """§1: SLAs per service by mapping services to their servers."""
        search = ServiceDefinition.of("search", ["dc0/a", "dc0/b"])
        storage = ServiceDefinition.of("storage", ["dc0/c"])
        tracker = SlaTracker([search, storage])
        rows = [
            _row(src="dc0/a", rtt_us=100.0),
            _row(src="dc0/b", rtt_us=200.0),
            _row(src="dc0/c", rtt_us=900.0),
            _row(src="dc0/unmapped", rtt_us=5000.0),
        ]
        slas = {sla.key: sla for sla in tracker.track_services(rows, 0.0, 600.0)}
        assert set(slas) == {"search", "storage"}
        assert slas["search"].probe_count == 2
        assert slas["storage"].p50_us == pytest.approx(900.0)

    def test_service_without_traffic_omitted(self):
        tracker = SlaTracker([ServiceDefinition.of("idle", ["dc0/zz"])])
        assert tracker.track_services([_row()], 0.0, 600.0) == []

    def test_duplicate_service_rejected(self):
        tracker = SlaTracker([ServiceDefinition.of("a", ["x"])])
        with pytest.raises(ValueError):
            tracker.register_service(ServiceDefinition.of("a", ["y"]))

    def test_empty_service_rejected(self):
        with pytest.raises(ValueError):
            ServiceDefinition.of("empty", [])

    def test_track_all_covers_every_scope(self):
        tracker = SlaTracker([ServiceDefinition.of("svc", ["dc0/s0-0"])])
        rows = [_row(src="dc0/s0-0")]
        slas = tracker.track_all(rows, 0.0, 600.0)
        scopes = {sla.scope for sla in slas}
        assert scopes == {
            SlaScope.DATACENTER,
            SlaScope.PODSET,
            SlaScope.POD,
            SlaScope.SERVER,
            SlaScope.SERVICE,
        }


class TestDcPairScope:
    """Cross-DC rows route exclusively to the DC_PAIR scope.

    A healthy long-haul probe pays tens to hundreds of milliseconds of
    speed-of-light latency; folding it into the intra-DC scopes would trip
    the 5 ms P99 threshold on a perfectly healthy WAN.
    """

    @pytest.fixture()
    def mixed_rows(self):
        rows = [_row(src=f"dc0/s0-{i}") for i in range(10)]
        rows += [
            _row(src=f"dc0/s0-{i}", dst=f"dc1/s0-{i}", dst_dc=1, rtt_us=54_000.0)
            for i in range(5)
        ]
        rows += [
            _row(src=f"dc0/s0-{i}", dst=f"dc2/s0-{i}", dst_dc=2, rtt_us=140_000.0)
            for i in range(3)
        ]
        return rows

    def test_dc_pair_scope_groups_only_cross_dc_rows(self, mixed_rows):
        slas = SlaTracker().track_scope(mixed_rows, SlaScope.DC_PAIR, 0.0, 600.0)
        assert {sla.key for sla in slas} == {"dc0->dc1", "dc0->dc2"}
        by_key = {sla.key: sla for sla in slas}
        assert by_key["dc0->dc1"].probe_count == 5
        assert by_key["dc0->dc2"].probe_count == 3
        assert by_key["dc0->dc1"].p50_us == pytest.approx(54_000.0)

    def test_dc_pair_keys_are_directional(self):
        rows = [
            _row(src="dc0/a", dst="dc1/b", dc=0, dst_dc=1),
            _row(src="dc1/b", dst="dc0/a", dc=1, dst_dc=0),
        ]
        slas = SlaTracker().track_scope(rows, SlaScope.DC_PAIR, 0.0, 600.0)
        assert {sla.key for sla in slas} == {"dc0->dc1", "dc1->dc0"}

    def test_intra_scopes_exclude_cross_dc_rows(self, mixed_rows):
        tracker = SlaTracker()
        for scope in (
            SlaScope.DATACENTER,
            SlaScope.PODSET,
            SlaScope.POD,
            SlaScope.SERVER,
        ):
            slas = tracker.track_scope(mixed_rows, scope, 0.0, 600.0)
            assert sum(sla.probe_count for sla in slas) == 10, scope
        dc_sla = tracker.track_scope(mixed_rows, SlaScope.DATACENTER, 0.0, 600.0)[0]
        # The 54/140 ms WAN samples must not pollute the local percentile.
        assert dc_sla.p99_us < 1000.0

    def test_services_exclude_cross_dc_rows(self, mixed_rows):
        tracker = SlaTracker([ServiceDefinition.of("svc", ["dc0/s0-0"])])
        slas = tracker.track_services(mixed_rows, 0.0, 600.0)
        assert len(slas) == 1
        assert slas[0].probe_count == 1  # only the intra row from dc0/s0-0

    def test_track_all_emits_dc_pair_slas(self, mixed_rows):
        slas = SlaTracker().track_all(mixed_rows, 0.0, 600.0)
        scopes = {sla.scope for sla in slas}
        assert SlaScope.DC_PAIR in scopes
        pair_keys = {sla.key for sla in slas if sla.scope == SlaScope.DC_PAIR}
        assert pair_keys == {"dc0->dc1", "dc0->dc2"}

    def test_rows_without_dst_dc_treated_as_intra(self):
        row = _row()
        del row["dst_dc"]
        assert SlaTracker().track_scope([row], SlaScope.DC_PAIR, 0.0, 600.0) == []
        slas = SlaTracker().track_scope([row], SlaScope.DATACENTER, 0.0, 600.0)
        assert slas[0].probe_count == 1
