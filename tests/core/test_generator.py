"""Tests for the pinglist generation algorithm (§3.3.1)."""

import pytest

from repro.core.controller.generator import GeneratorConfig, PingmeshGenerator
from repro.netsim.topology import MultiDCTopology, TopologySpec


@pytest.fixture(scope="module")
def single_dc():
    return MultiDCTopology.single(TopologySpec())


@pytest.fixture(scope="module")
def multi_dc():
    return MultiDCTopology(
        [
            TopologySpec(name="dc-a", region="us-west"),
            TopologySpec(name="dc-b", region="europe"),
            TopologySpec(name="dc-c", region="asia"),
        ]
    )


class TestIntraPodLevel:
    def test_complete_graph_within_pod(self, single_dc):
        generator = PingmeshGenerator(single_dc)
        server = single_dc.dc(0).servers_in_pod(0)[0]
        pinglist = generator.generate_for(server.device_id)
        intra = pinglist.peers_by_purpose("intra-pod")
        expected_peers = single_dc.dc(0).spec.servers_per_pod - 1
        assert len(intra) == expected_peers
        assert all(entry.peer_id != server.device_id for entry in intra)

    def test_intra_pod_is_symmetric(self, single_dc):
        """Both directions are generated — each side measures independently."""
        generator = PingmeshGenerator(single_dc)
        a, b = single_dc.dc(0).servers_in_pod(0)[:2]
        a_list = generator.generate_for(a.device_id)
        b_list = generator.generate_for(b.device_id)
        assert b.device_id in {e.peer_id for e in a_list.peers_by_purpose("intra-pod")}
        assert a.device_id in {e.peer_id for e in b_list.peers_by_purpose("intra-pod")}


class TestTorLevel:
    def test_server_i_pings_server_i(self, single_dc):
        """'for any ToR-pair (ToRx, ToRy), let server i in ToRx ping server
        i in ToRy' — host indices must match."""
        generator = PingmeshGenerator(single_dc)
        dc = single_dc.dc(0)
        server = dc.servers_in_pod(0)[3]  # host index 3
        pinglist = generator.generate_for(server.device_id)
        for entry in pinglist.peers_by_purpose("tor-level"):
            peer = single_dc.server(entry.peer_id)
            assert peer.host_index == server.host_index
            assert peer.pod_index != server.pod_index

    def test_one_peer_per_other_pod(self, single_dc):
        generator = PingmeshGenerator(single_dc)
        dc = single_dc.dc(0)
        pinglist = generator.generate_for(dc.servers[0].device_id)
        tor_level = pinglist.peers_by_purpose("tor-level")
        assert len(tor_level) == dc.spec.n_pods - 1
        pods = {single_dc.server(e.peer_id).pod_index for e in tor_level}
        assert len(pods) == dc.spec.n_pods - 1

    def test_all_servers_participate(self, single_dc):
        """'We finally come up with the idea of letting all the servers
        participate' — every server has a non-empty pinglist."""
        generator = PingmeshGenerator(single_dc)
        pinglists = generator.generate_all()
        assert len(pinglists) == single_dc.n_servers
        assert all(len(p) > 0 for p in pinglists.values())

    def test_probing_load_is_balanced(self, single_dc):
        """Every server is probed by roughly the same number of peers."""
        generator = PingmeshGenerator(single_dc)
        pinglists = generator.generate_all()
        probed_by: dict[str, int] = {}
        for pinglist in pinglists.values():
            for entry in pinglist.entries:
                probed_by[entry.peer_id] = probed_by.get(entry.peer_id, 0) + 1
        counts = list(probed_by.values())
        assert max(counts) == min(counts)  # perfectly balanced by symmetry


class TestInterDcLevel:
    def test_only_selected_servers_probe_across_dcs(self, multi_dc):
        generator = PingmeshGenerator(
            multi_dc, GeneratorConfig(inter_dc_servers_per_podset=2)
        )
        dc = multi_dc.dc(0)
        selected = generator.inter_dc_selection(dc)
        assert len(selected) == dc.spec.n_podsets * 2
        chosen = selected[0]
        not_chosen = dc.servers_in_podset(0)[5]
        assert len(
            generator.generate_for(chosen.device_id).peers_by_purpose("inter-dc")
        ) > 0
        assert (
            generator.generate_for(not_chosen.device_id).peers_by_purpose("inter-dc")
            == []
        )

    def test_dc_complete_graph(self, multi_dc):
        """Selected servers probe selections of every *other* DC."""
        generator = PingmeshGenerator(multi_dc)
        chosen = generator.inter_dc_selection(multi_dc.dc(0))[0]
        entries = generator.generate_for(chosen.device_id).peers_by_purpose("inter-dc")
        dcs_probed = {multi_dc.server(e.peer_id).dc_index for e in entries}
        assert dcs_probed == {1, 2}

    def test_single_dc_has_no_inter_dc_entries(self, single_dc):
        generator = PingmeshGenerator(single_dc)
        pinglist = generator.generate_for(single_dc.dc(0).servers[0].device_id)
        assert pinglist.peers_by_purpose("inter-dc") == []

    def test_selection_is_deterministic(self, multi_dc):
        """Stateless controller replicas must agree on the selection."""
        a = PingmeshGenerator(multi_dc).inter_dc_selection(multi_dc.dc(1))
        b = PingmeshGenerator(multi_dc).inter_dc_selection(multi_dc.dc(1))
        assert [s.device_id for s in a] == [s.device_id for s in b]

    def test_selection_skips_down_servers(self, multi_dc):
        """Regression: a down pivot must fall through to the next live
        server, not silently blind its podset's inter-DC coverage."""
        generator = PingmeshGenerator(
            multi_dc, GeneratorConfig(inter_dc_servers_per_podset=2)
        )
        dc = multi_dc.dc(0)
        healthy = generator.inter_dc_selection(dc)
        downed = healthy[0]
        downed.bring_down()
        try:
            selected = generator.inter_dc_selection(dc)
            assert downed.device_id not in {s.device_id for s in selected}
            assert all(s.is_up for s in selected)
            # The podset still fields its full complement of pivots.
            assert len(selected) == len(healthy)
            # The replacement is the next live server of the same podset.
            assert selected[0] is dc.servers_in_podset(0)[1]
        finally:
            downed.bring_up()


class TestExtensions:
    def test_qos_low_duplicates_tor_level(self, single_dc):
        generator = PingmeshGenerator(single_dc, GeneratorConfig(enable_qos_low=True))
        pinglist = generator.generate_for(single_dc.dc(0).servers[0].device_id)
        high = [e for e in pinglist.entries if e.qos == "high" and e.purpose == "tor-level"]
        low = [e for e in pinglist.entries if e.qos == "low"]
        assert len(low) == len([e for e in high if e.payload_bytes == 0])

    def test_payload_entries_every_nth(self, single_dc):
        generator = PingmeshGenerator(
            single_dc, GeneratorConfig(payload_every_nth_peer=2, payload_bytes=1000)
        )
        pinglist = generator.generate_for(single_dc.dc(0).servers[0].device_id)
        payload_entries = [e for e in pinglist.entries if e.payload_bytes == 1000]
        tor_level_plain = [
            e
            for e in pinglist.entries
            if e.purpose == "tor-level" and e.payload_bytes == 0
        ]
        assert len(payload_entries) == (len(tor_level_plain) + 1) // 2

    def test_vip_targets_appended(self, single_dc):
        generator = PingmeshGenerator(
            single_dc, GeneratorConfig(vip_targets=("search.vip", "storage.vip"))
        )
        pinglist = generator.generate_for(single_dc.dc(0).servers[0].device_id)
        vips = pinglist.peers_by_purpose("vip")
        assert {e.peer_id for e in vips} == {"search.vip", "storage.vip"}


class TestThreshold:
    def test_peers_capped(self, single_dc):
        generator = PingmeshGenerator(
            single_dc, GeneratorConfig(max_peers_per_server=10)
        )
        for pinglist in generator.generate_all().values():
            assert len(pinglist) <= 10

    def test_intra_pod_survives_trimming(self, single_dc):
        generator = PingmeshGenerator(
            single_dc, GeneratorConfig(max_peers_per_server=8)
        )
        pinglist = generator.generate_for(single_dc.dc(0).servers[0].device_id)
        # 7 intra-pod peers fit in the budget of 8 and have top priority.
        assert len(pinglist.peers_by_purpose("intra-pod")) == 7

    def test_trimming_samples_rather_than_truncates(self, single_dc):
        generator = PingmeshGenerator(
            single_dc, GeneratorConfig(max_peers_per_server=11)
        )
        pinglist = generator.generate_for(single_dc.dc(0).servers[0].device_id)
        tor_level = pinglist.peers_by_purpose("tor-level")
        pods = sorted(single_dc.server(e.peer_id).pod_index for e in tor_level)
        # 4 slots for 7 pods: sampled across the range, not pods [1,2,3,4].
        assert pods[-1] > 4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(max_peers_per_server=0)
        with pytest.raises(ValueError):
            GeneratorConfig(inter_dc_servers_per_podset=0)
        with pytest.raises(ValueError):
            GeneratorConfig(payload_bytes=100)
        with pytest.raises(ValueError):
            GeneratorConfig(payload_every_nth_peer=-1)

    def test_pinglist_sizes_scale_with_dc_size(self):
        """§3.3.1: pinglist size depends on the size of the data center."""
        small = MultiDCTopology.single(TopologySpec())
        big = MultiDCTopology.single(
            TopologySpec(n_podsets=4, pods_per_podset=8, servers_per_pod=10)
        )
        small_len = len(
            PingmeshGenerator(small).generate_for(small.dc(0).servers[0].device_id)
        )
        big_len = len(
            PingmeshGenerator(big).generate_for(big.dc(0).servers[0].device_id)
        )
        assert big_len > small_len
