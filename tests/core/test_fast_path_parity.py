"""Fast rounds must be statistically indistinguishable from scalar rounds.

``probe_many`` samples the healthy partition of a round from the same
analytic model ``batch_probe`` uses, while anything needing full fidelity
runs the scalar engine.  These tests pin both halves of that contract:
the partition rule (who goes where) and distribution parity (fast and
scalar rounds with the same seed agree on drop rate and percentiles).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent.agent import AgentConfig, PingmeshAgent
from repro.stream.sketch import ClassStats
from repro.core.agent.uploader import ResultUploader
from repro.core.controller.service import PingmeshControllerService
from repro.cosmos.store import CosmosStore
from repro.netsim.fabric import Fabric
from repro.netsim.faults import BlackholeType1, SilentRandomDrop
from repro.netsim.topology import TopologySpec

_SPEC = TopologySpec(n_podsets=2, pods_per_podset=2, servers_per_pod=4, n_spines=4)


def _fabric(seed=5):
    return Fabric.single_dc(_SPEC, seed=seed)


def _round_entries(fabric, n=12):
    dc = fabric.topology.dc(0)
    src = dc.servers_in_podset(0)[0]
    peers = [s for s in dc.servers if s.device_id != src.device_id][:n]
    return src, [(peer.device_id, 81, 0) for peer in peers]


def _count_scalar_probes(fabric):
    """Monkeypatch-free spy: scalar probes notify observers from ``probe``,
    so count calls routed through it by wrapping the bound method."""
    calls = []
    original = fabric.probe

    def spy(*args, **kwargs):
        calls.append(1)
        return original(*args, **kwargs)

    fabric.probe = spy
    return calls


class TestPartitionRule:
    def test_healthy_round_is_fully_fast(self):
        fabric = _fabric()
        src, entries = _round_entries(fabric)
        calls = _count_scalar_probes(fabric)
        results = fabric.probe_many(src, entries)
        assert len(results) == len(entries)
        assert calls == []  # nothing needed the scalar engine

    def test_payload_entries_take_the_scalar_engine(self):
        fabric = _fabric()
        src, entries = _round_entries(fabric, n=4)
        entries[1] = (entries[1][0], 81, 800)
        calls = _count_scalar_probes(fabric)
        results = fabric.probe_many(src, entries)
        assert len(calls) == 1
        assert results[1].payload_rtt_s is not None or not results[1].success

    def test_down_destination_takes_the_scalar_engine(self):
        fabric = _fabric()
        src, entries = _round_entries(fabric, n=4)
        fabric.topology.server(entries[2][0]).bring_down()
        calls = _count_scalar_probes(fabric)
        results = fabric.probe_many(src, entries)
        assert len(calls) == 1
        assert not results[2].success

    def test_fault_in_envelope_takes_the_scalar_engine(self):
        """A fault on ANY switch the pair's ECMP sweep could cross forces
        the scalar engine — even when the representative path avoids it."""
        fabric = _fabric()
        src, entries = _round_entries(fabric)
        # Fault one spine: every cross-podset pair has it in its envelope,
        # whichever spine their representative flow hashes to.
        spine = fabric.topology.dc(0).spines[0]
        fabric.faults.inject(SilentRandomDrop(switch_id=spine.device_id))
        calls = _count_scalar_probes(fabric)
        cross = [
            (s.device_id, 81, 0)
            for s in fabric.topology.dc(0).servers_in_podset(1)
        ]
        fabric.probe_many(src, cross)
        assert len(calls) == len(cross)

    def test_fault_outside_envelope_stays_fast(self):
        fabric = _fabric()
        dc = fabric.topology.dc(0)
        src = dc.servers_in_pod(0)[0]
        dst = dc.servers_in_pod(0)[1]  # intra-pod: envelope is one ToR
        other_podset_tor = next(t for t in dc.tors if t.podset_index == 1)
        fabric.faults.inject(SilentRandomDrop(switch_id=other_podset_tor.device_id))
        calls = _count_scalar_probes(fabric)
        fabric.probe_many(src, [(dst.device_id, 81, 0)])
        assert calls == []

    def test_blackhole_detected_identically_through_probe_many(self):
        """A type-1 blackhole on the source ToR must fail the affected
        pairs whether the round went fast or scalar — the partition rule
        degrades them to scalar, where the fault engine decides."""
        fabric = _fabric()
        src, entries = _round_entries(fabric)
        tor = fabric.topology.dc(0).tor_of(fabric.topology.server(src.device_id))
        fabric.faults.inject(BlackholeType1(switch_id=tor.device_id, fraction=1.0))
        results = fabric.probe_many(src, entries, t=50.0)
        assert all(not r.success for r in results)


class TestDistributionParity:
    def test_fast_and_scalar_rounds_match_statistically(self):
        """Same seed, same entries: drop rate and latency percentiles of
        the fast engine match the scalar engine within sampling noise."""
        rounds, t_step = 40, 30.0
        fast = _fabric(seed=5)
        scalar = _fabric(seed=5)
        src_f, entries = _round_entries(fast)
        src_s, _ = _round_entries(scalar)

        fast_results, scalar_results = [], []
        for r in range(rounds):
            t = r * t_step
            fast_results.extend(fast.probe_many(src_f, entries, t=t))
            for dst_id, dst_port, payload in entries:
                scalar_results.append(
                    scalar.probe(src_s, dst_id, t=t, dst_port=dst_port,
                                 payload_bytes=payload)
                )

        assert len(fast_results) == len(scalar_results)
        fast_ok = np.array([r.success for r in fast_results])
        scalar_ok = np.array([r.success for r in scalar_results])
        # Drop rates agree within a few sigma of the binomial noise floor.
        n = len(fast_results)
        tolerance = 4.0 * np.sqrt(0.01 / n) + 1e-9
        assert abs(fast_ok.mean() - scalar_ok.mean()) <= max(tolerance, 0.02)

        fast_rtt = np.array([r.rtt_s for r in fast_results])[fast_ok]
        scalar_rtt = np.array([r.rtt_s for r in scalar_results])[scalar_ok]
        for q in (50, 90):
            a = np.percentile(fast_rtt, q)
            b = np.percentile(scalar_rtt, q)
            assert abs(a - b) / b < 0.15, f"P{q}: fast {a:.6f}s vs scalar {b:.6f}s"

    def test_agent_rounds_agree_across_engines(self):
        """A fast agent and a scalar agent over identical worlds produce
        the same record count, schema, and matching counter stats."""
        outputs = {}
        for use_fast in (True, False):
            fabric = _fabric(seed=9)
            controller = PingmeshControllerService(fabric.topology, n_replicas=2)
            controller.regenerate()
            store = CosmosStore()
            server_id = fabric.topology.dc(0).servers[0].device_id
            uploader = ResultUploader(store, server_id)
            agent = PingmeshAgent(
                server_id, fabric, controller, uploader,
                config=AgentConfig(use_fast_path=use_fast),
            )
            agent.start(now=0.0)
            agent.refresh_pinglist(t=0.0)
            launched = sum(
                agent.run_probe_round(t=30.0 * (r + 1)) for r in range(5)
            )
            outputs[use_fast] = (launched, agent.uploader.buffered_records,
                                 agent.counters.probes_total)

        assert outputs[True] == outputs[False]

    def test_record_schema_identical_across_engines(self):
        from repro.core.dsa.records import make_record, make_records

        fabric = _fabric(seed=2)
        src, entries = _round_entries(fabric, n=6)
        results = fabric.probe_many(src, entries, t=40.0)
        bulk = make_records(
            fabric.topology, [(r, "tor-level", "high") for r in results]
        )
        single = [
            make_record(fabric.topology, r, purpose="tor-level", qos="high")
            for r in results
        ]
        assert bulk == single


class TestClassRoundParity:
    """The fidelity ladder's top rung: closed-form class rounds must match
    the per-pair fast path in distribution, and exactly in accounting."""

    def test_class_and_fast_rounds_match_statistically(self):
        rounds, t_step = 40, 30.0
        classed = _fabric(seed=5)
        fast = _fabric(seed=5)
        src_c, entries = _round_entries(classed)
        src_f, _ = _round_entries(fast)

        class_rtts, fast_rtts = [], []
        class_failed = fast_failed = 0
        for r in range(rounds):
            t = r * t_step
            plan = classed.build_class_plan(src_c, entries)
            assert plan.passthrough == []  # healthy world: fully classed
            for outcome in classed.run_class_plan(plan, t=t):
                class_rtts.append(outcome.rtt_s)
                class_failed += outcome.failed
            results = fast.probe_many(src_f, entries, t=t)
            fast_rtts.append(
                np.array([r.rtt_s for r in results if r.success])
            )
            fast_failed += sum(1 for r in results if not r.success)

        class_rtt = np.concatenate(class_rtts)
        fast_rtt = np.concatenate(fast_rtts)
        n = rounds * len(entries)
        assert len(class_rtt) + class_failed == n
        assert len(fast_rtt) + fast_failed == n
        tolerance = 4.0 * np.sqrt(0.01 / n) + 1e-9
        assert abs(class_failed - fast_failed) / n <= max(tolerance, 0.02)
        for q in (50, 90):
            a = np.percentile(class_rtt, q)
            b = np.percentile(fast_rtt, q)
            assert abs(a - b) / b < 0.15, f"P{q}: class {a:.6f}s vs fast {b:.6f}s"

    def test_agent_rounds_agree_across_modes(self):
        """A class-mode agent and a fast-mode agent over identical worlds
        launch the same probe count per round and agree on counter totals;
        class mode ships summary rows on the class stream instead of
        per-probe rows."""
        outputs = {}
        for mode in ("class", "fast"):
            fabric = _fabric(seed=9)
            controller = PingmeshControllerService(fabric.topology, n_replicas=2)
            controller.regenerate()
            store = CosmosStore()
            server_id = fabric.topology.dc(0).servers[0].device_id
            uploader = ResultUploader(store, server_id)
            agent = PingmeshAgent(
                server_id, fabric, controller, uploader,
                config=AgentConfig(round_mode=mode),
            )
            agent.start(now=0.0)
            agent.refresh_pinglist(t=0.0)
            launched = sum(
                agent.run_probe_round(t=30.0 * (r + 1)) for r in range(5)
            )
            outputs[mode] = (launched, agent.counters.probes_total)

        assert outputs["class"] == outputs["fast"]

    def test_class_agent_uploads_to_class_stream(self):
        from repro.core.dsa.records import CLASS_RECORD_COLUMNS, CLASS_STREAM

        fabric = _fabric(seed=4)
        controller = PingmeshControllerService(fabric.topology, n_replicas=2)
        controller.regenerate()
        store = CosmosStore()
        server_id = fabric.topology.dc(0).servers[0].device_id
        agent = PingmeshAgent(
            server_id, fabric, controller, ResultUploader(store, server_id),
            config=AgentConfig(round_mode="class"),
        )
        agent.start(now=0.0)
        agent.refresh_pinglist(t=0.0)
        agent.run_probe_round(t=30.0)
        assert agent.class_uploader.buffered_records > 0
        agent.class_uploader.flush(60.0)
        records = list(store.read(CLASS_STREAM))
        assert records
        assert set(records[0]) == set(CLASS_RECORD_COLUMNS)


def _apply_event(fabric, event):
    """One world-mutating step of a hypothesis-generated sequence, applied
    identically to both fabrics under comparison."""
    dc = fabric.topology.dc(0)
    if event == "spine_fault":
        fabric.faults.inject(
            SilentRandomDrop(switch_id=dc.spines[0].device_id, drop_prob=0.1)
        )
    elif event == "clear_faults":
        fabric.faults.clear_all()
    elif event == "server_down":
        dc.servers_in_podset(1)[0].bring_down()
    elif event == "server_up":
        dc.servers_in_podset(1)[0].bring_up()
    elif event == "grow":
        if dc.spec.n_podsets < 4:  # bound the world size
            dc.add_podset()


def _ks_distance(a, b):
    """Two-sample Kolmogorov-Smirnov statistic: max CDF distance."""
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    grid = np.concatenate([a, b])
    ca = np.searchsorted(a, grid, side="right") / len(a)
    cb = np.searchsorted(b, grid, side="right") / len(b)
    return float(np.max(np.abs(ca - cb)))


class TestClassRoundPropertyParity:
    """Property: across arbitrary fault/flap/growth sequences, class-round
    execution conserves probes exactly and tracks the per-pair fast path's
    distribution within sketch error + sampling noise."""

    @given(
        events=st.lists(
            st.sampled_from(
                ["spine_fault", "clear_faults", "server_down",
                 "server_up", "grow"]
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=12, deadline=None)
    def test_counts_exact_and_quantiles_bounded(self, events):
        classed = _fabric(seed=13)
        fast = _fabric(seed=13)
        class_stats = ClassStats(relative_accuracy=0.01)
        fast_stats = ClassStats(relative_accuracy=0.01)
        class_rtts: list = []
        fast_rtts: list = []

        t = 0.0
        for event in events:
            _apply_event(classed, event)
            _apply_event(fast, event)
            dc = classed.topology.dc(0)
            src = dc.servers_in_podset(0)[0]
            peers = [s for s in dc.servers if s is not src][:16]
            entries = [(p.device_id, 81, 0) for p in peers]

            for _ in range(6):
                t += 30.0
                plan = classed.build_class_plan(src, entries)
                # Exact conservation: every entry is classed or passed through.
                assert plan.n_class_probes + len(plan.passthrough) == len(entries)
                carried_before = classed.probes_carried
                n_class_ok = 0
                for outcome in classed.run_class_plan(plan, t=t):
                    assert outcome.success + outcome.failed == outcome.n
                    n_class_ok += outcome.success
                    class_stats.observe_aggregate(
                        outcome.failed, outcome.rtt_s * 1e6
                    )
                    class_rtts.extend(outcome.rtt_s * 1e6)
                assert (
                    classed.probes_carried - carried_before
                    == plan.n_class_probes
                )
                if plan.passthrough:
                    degraded = [entries[i] for i in plan.passthrough]
                    for result in classed.probe_many(src, degraded, t=t):
                        class_stats.observe(result.success, result.rtt_s * 1e6)
                        if result.success:
                            class_rtts.append(result.rtt_s * 1e6)

                fast_src = fast.topology.dc(0).servers_in_podset(0)[0]
                for result in fast.probe_many(fast_src, entries, t=t):
                    fast_stats.observe(result.success, result.rtt_s * 1e6)
                    if result.success:
                        fast_rtts.append(result.rtt_s * 1e6)

        # Both sides saw exactly one outcome per entry per round.
        assert class_stats.probes == fast_stats.probes
        # Failure counts within binomial noise of each other (tiny p).
        n = class_stats.probes
        assert abs(class_stats.failed - fast_stats.failed) <= max(
            5, 4 * np.sqrt(0.05 * n)
        )
        # Distributional parity via the two-sample KS statistic.  The RTT
        # mixture is multimodal (one mode per scope), so fixed quantiles sit
        # on cliffs between modes and flake; the KS distance compares CDF
        # *probabilities* instead of positions and is immune to that.  The
        # bound is the classical critical value c(alpha)*sqrt(1/n1 + 1/n2)
        # with c=2.5 (alpha ~ 4e-6), generous enough for hypothesis's many
        # examples while still catching any systematic model divergence.
        if len(class_rtts) > 150 and len(fast_rtts) > 150:
            dist = _ks_distance(class_rtts, fast_rtts)
            bound = 2.5 * np.sqrt(1 / len(class_rtts) + 1 / len(fast_rtts))
            assert dist < bound, (
                f"KS distance {dist:.3f} exceeds {bound:.3f} "
                f"(n={len(class_rtts)}/{len(fast_rtts)})"
            )
