"""Fast rounds must be statistically indistinguishable from scalar rounds.

``probe_many`` samples the healthy partition of a round from the same
analytic model ``batch_probe`` uses, while anything needing full fidelity
runs the scalar engine.  These tests pin both halves of that contract:
the partition rule (who goes where) and distribution parity (fast and
scalar rounds with the same seed agree on drop rate and percentiles).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.agent.agent import AgentConfig, PingmeshAgent
from repro.core.agent.uploader import ResultUploader
from repro.core.controller.service import PingmeshControllerService
from repro.cosmos.store import CosmosStore
from repro.netsim.fabric import Fabric
from repro.netsim.faults import BlackholeType1, SilentRandomDrop
from repro.netsim.topology import TopologySpec

_SPEC = TopologySpec(n_podsets=2, pods_per_podset=2, servers_per_pod=4, n_spines=4)


def _fabric(seed=5):
    return Fabric.single_dc(_SPEC, seed=seed)


def _round_entries(fabric, n=12):
    dc = fabric.topology.dc(0)
    src = dc.servers_in_podset(0)[0]
    peers = [s for s in dc.servers if s.device_id != src.device_id][:n]
    return src, [(peer.device_id, 81, 0) for peer in peers]


def _count_scalar_probes(fabric):
    """Monkeypatch-free spy: scalar probes notify observers from ``probe``,
    so count calls routed through it by wrapping the bound method."""
    calls = []
    original = fabric.probe

    def spy(*args, **kwargs):
        calls.append(1)
        return original(*args, **kwargs)

    fabric.probe = spy
    return calls


class TestPartitionRule:
    def test_healthy_round_is_fully_fast(self):
        fabric = _fabric()
        src, entries = _round_entries(fabric)
        calls = _count_scalar_probes(fabric)
        results = fabric.probe_many(src, entries)
        assert len(results) == len(entries)
        assert calls == []  # nothing needed the scalar engine

    def test_payload_entries_take_the_scalar_engine(self):
        fabric = _fabric()
        src, entries = _round_entries(fabric, n=4)
        entries[1] = (entries[1][0], 81, 800)
        calls = _count_scalar_probes(fabric)
        results = fabric.probe_many(src, entries)
        assert len(calls) == 1
        assert results[1].payload_rtt_s is not None or not results[1].success

    def test_down_destination_takes_the_scalar_engine(self):
        fabric = _fabric()
        src, entries = _round_entries(fabric, n=4)
        fabric.topology.server(entries[2][0]).bring_down()
        calls = _count_scalar_probes(fabric)
        results = fabric.probe_many(src, entries)
        assert len(calls) == 1
        assert not results[2].success

    def test_fault_in_envelope_takes_the_scalar_engine(self):
        """A fault on ANY switch the pair's ECMP sweep could cross forces
        the scalar engine — even when the representative path avoids it."""
        fabric = _fabric()
        src, entries = _round_entries(fabric)
        # Fault one spine: every cross-podset pair has it in its envelope,
        # whichever spine their representative flow hashes to.
        spine = fabric.topology.dc(0).spines[0]
        fabric.faults.inject(SilentRandomDrop(switch_id=spine.device_id))
        calls = _count_scalar_probes(fabric)
        cross = [
            (s.device_id, 81, 0)
            for s in fabric.topology.dc(0).servers_in_podset(1)
        ]
        fabric.probe_many(src, cross)
        assert len(calls) == len(cross)

    def test_fault_outside_envelope_stays_fast(self):
        fabric = _fabric()
        dc = fabric.topology.dc(0)
        src = dc.servers_in_pod(0)[0]
        dst = dc.servers_in_pod(0)[1]  # intra-pod: envelope is one ToR
        other_podset_tor = next(t for t in dc.tors if t.podset_index == 1)
        fabric.faults.inject(SilentRandomDrop(switch_id=other_podset_tor.device_id))
        calls = _count_scalar_probes(fabric)
        fabric.probe_many(src, [(dst.device_id, 81, 0)])
        assert calls == []

    def test_blackhole_detected_identically_through_probe_many(self):
        """A type-1 blackhole on the source ToR must fail the affected
        pairs whether the round went fast or scalar — the partition rule
        degrades them to scalar, where the fault engine decides."""
        fabric = _fabric()
        src, entries = _round_entries(fabric)
        tor = fabric.topology.dc(0).tor_of(fabric.topology.server(src.device_id))
        fabric.faults.inject(BlackholeType1(switch_id=tor.device_id, fraction=1.0))
        results = fabric.probe_many(src, entries, t=50.0)
        assert all(not r.success for r in results)


class TestDistributionParity:
    def test_fast_and_scalar_rounds_match_statistically(self):
        """Same seed, same entries: drop rate and latency percentiles of
        the fast engine match the scalar engine within sampling noise."""
        rounds, t_step = 40, 30.0
        fast = _fabric(seed=5)
        scalar = _fabric(seed=5)
        src_f, entries = _round_entries(fast)
        src_s, _ = _round_entries(scalar)

        fast_results, scalar_results = [], []
        for r in range(rounds):
            t = r * t_step
            fast_results.extend(fast.probe_many(src_f, entries, t=t))
            for dst_id, dst_port, payload in entries:
                scalar_results.append(
                    scalar.probe(src_s, dst_id, t=t, dst_port=dst_port,
                                 payload_bytes=payload)
                )

        assert len(fast_results) == len(scalar_results)
        fast_ok = np.array([r.success for r in fast_results])
        scalar_ok = np.array([r.success for r in scalar_results])
        # Drop rates agree within a few sigma of the binomial noise floor.
        n = len(fast_results)
        tolerance = 4.0 * np.sqrt(0.01 / n) + 1e-9
        assert abs(fast_ok.mean() - scalar_ok.mean()) <= max(tolerance, 0.02)

        fast_rtt = np.array([r.rtt_s for r in fast_results])[fast_ok]
        scalar_rtt = np.array([r.rtt_s for r in scalar_results])[scalar_ok]
        for q in (50, 90):
            a = np.percentile(fast_rtt, q)
            b = np.percentile(scalar_rtt, q)
            assert abs(a - b) / b < 0.15, f"P{q}: fast {a:.6f}s vs scalar {b:.6f}s"

    def test_agent_rounds_agree_across_engines(self):
        """A fast agent and a scalar agent over identical worlds produce
        the same record count, schema, and matching counter stats."""
        outputs = {}
        for use_fast in (True, False):
            fabric = _fabric(seed=9)
            controller = PingmeshControllerService(fabric.topology, n_replicas=2)
            controller.regenerate()
            store = CosmosStore()
            server_id = fabric.topology.dc(0).servers[0].device_id
            uploader = ResultUploader(store, server_id)
            agent = PingmeshAgent(
                server_id, fabric, controller, uploader,
                config=AgentConfig(use_fast_path=use_fast),
            )
            agent.start(now=0.0)
            agent.refresh_pinglist(t=0.0)
            launched = sum(
                agent.run_probe_round(t=30.0 * (r + 1)) for r in range(5)
            )
            outputs[use_fast] = (launched, agent.uploader.buffered_records,
                                 agent.counters.probes_total)

        assert outputs[True] == outputs[False]

    def test_record_schema_identical_across_engines(self):
        from repro.core.dsa.records import make_record, make_records

        fabric = _fabric(seed=2)
        src, entries = _round_entries(fabric, n=6)
        results = fabric.probe_many(src, entries, t=40.0)
        bulk = make_records(
            fabric.topology, [(r, "tor-level", "high") for r in results]
        )
        single = [
            make_record(fabric.topology, r, purpose="tor-level", qos="high")
            for r in results
        ]
        assert bulk == single
