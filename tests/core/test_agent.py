"""Tests for the Pingmesh Agent (§3.4)."""

import pytest

from repro.autopilot.shared_service import ResourceBudgetExceeded
from repro.core.agent.agent import AgentConfig, PingmeshAgent
from repro.core.agent.uploader import ResultUploader
from repro.core.controller.generator import GeneratorConfig
from repro.core.controller.service import PingmeshControllerService
from repro.cosmos.store import CosmosStore
from repro.netsim.fabric import Fabric
from repro.netsim.topology import TopologySpec


@pytest.fixture()
def world():
    fabric = Fabric.single_dc(TopologySpec(), seed=3)
    controller = PingmeshControllerService(fabric.topology, n_replicas=2)
    controller.regenerate()
    store = CosmosStore()
    return fabric, controller, store


def _agent(world, server_index=0, config=None, **uploader_kwargs):
    fabric, controller, store = world
    server_id = fabric.topology.dc(0).servers[server_index].device_id
    uploader = ResultUploader(store, server_id, **uploader_kwargs)
    agent = PingmeshAgent(server_id, fabric, controller, uploader, config=config)
    agent.start(now=0.0)
    return agent


class TestPinglistHandling:
    def test_refresh_downloads_pinglist(self, world):
        agent = _agent(world)
        assert agent.refresh_pinglist(t=0.0)
        assert agent.probing
        assert len(agent.pinglist) > 0

    def test_probe_interval_clamped(self, world):
        fabric, controller, store = world
        controller.reconfigure(GeneratorConfig(probe_interval_s=1.0))
        agent = _agent(world)
        agent.refresh_pinglist(t=0.0)
        assert agent.probe_interval_s == 10.0  # hard floor

    def test_three_controller_failures_fall_closed(self, world):
        fabric, controller, store = world
        agent = _agent(world)
        agent.refresh_pinglist(t=0.0)
        for replica in list(controller.replicas):
            controller.fail_replica(replica)
        for _ in range(3):
            assert agent.refresh_pinglist(t=0.0) is False
        assert agent.safety.fail_closed
        assert agent.pinglist is None  # peers removed
        assert not agent.probing

    def test_two_failures_keep_old_pinglist(self, world):
        fabric, controller, store = world
        agent = _agent(world)
        agent.refresh_pinglist(t=0.0)
        for replica in list(controller.replicas):
            controller.fail_replica(replica)
        agent.refresh_pinglist(t=0.0)
        agent.refresh_pinglist(t=0.0)
        assert agent.probing  # still using the stale pinglist

    def test_kill_switch_stops_probing_immediately(self, world):
        """Removing the pinglist files stops the fleet (§3.4.2)."""
        fabric, controller, store = world
        agent = _agent(world)
        agent.refresh_pinglist(t=0.0)
        controller.remove_all_pinglists()
        agent.refresh_pinglist(t=0.0)
        assert agent.safety.fail_closed
        assert not agent.probing
        assert agent.run_probe_round(t=10.0) == 0

    def test_recovery_after_fail_closed(self, world):
        fabric, controller, store = world
        agent = _agent(world)
        controller.remove_all_pinglists()
        agent.refresh_pinglist(t=0.0)
        controller.regenerate()
        assert agent.refresh_pinglist(t=100.0)
        assert agent.probing


class TestProbing:
    def test_round_probes_every_peer(self, world):
        agent = _agent(world)
        agent.refresh_pinglist(t=0.0)
        launched = agent.run_probe_round(t=10.0)
        assert launched == len(agent.pinglist)
        assert agent.probes_sent == launched
        assert agent.uploader.buffered_records == launched

    def test_records_carry_topology_coordinates(self, world):
        fabric, controller, store = world
        agent = _agent(world)
        agent.refresh_pinglist(t=0.0)
        agent.run_probe_round(t=10.0)
        agent.uploader.flush(t=20.0)
        record = next(store.read("pingmesh/latency"))
        assert {"src_pod", "dst_pod", "src_podset", "purpose", "rtt_us"} <= set(record)

    def test_counters_track_probes(self, world):
        agent = _agent(world)
        agent.refresh_pinglist(t=0.0)
        agent.run_probe_round(t=10.0)
        snapshot = agent.counters.snapshot()
        assert snapshot["probes_total"] == agent.probes_sent
        assert snapshot["latency_p50_us"] > 0

    def test_no_round_without_pinglist(self, world):
        agent = _agent(world)
        assert agent.run_probe_round(t=0.0) == 0

    def test_vip_entries_skipped_without_resolver(self, world):
        fabric, controller, store = world
        controller.reconfigure(GeneratorConfig(vip_targets=("search.vip",)))
        agent = _agent(world)
        agent.refresh_pinglist(t=0.0)
        launched = agent.run_probe_round(t=10.0)
        assert launched == len(agent.pinglist) - 1

    def test_vip_entries_probed_with_resolver(self, world):
        fabric, controller, store = world
        controller.reconfigure(GeneratorConfig(vip_targets=("search.vip",)))
        dip = fabric.topology.dc(0).servers[10].device_id
        server_id = fabric.topology.dc(0).servers[0].device_id
        uploader = ResultUploader(store, server_id)
        agent = PingmeshAgent(
            server_id,
            fabric,
            controller,
            uploader,
            vip_resolver=lambda vip: dip,
        )
        agent.start(now=0.0)
        agent.refresh_pinglist(t=0.0)
        assert agent.run_probe_round(t=10.0) == len(agent.pinglist)


class TestUploadCycle:
    def test_timer_triggers_upload(self, world):
        fabric, controller, store = world
        agent = _agent(world, config=AgentConfig(upload_period_s=600.0))
        agent.refresh_pinglist(t=0.0)
        agent.run_probe_round(t=10.0)
        assert agent.maybe_upload(t=10.0) is False  # timer not due
        assert agent.maybe_upload(t=700.0) is True
        assert store.stream("pingmesh/latency").record_count > 0

    def test_threshold_triggers_upload_early(self, world):
        agent = _agent(
            world,
            config=AgentConfig(upload_period_s=1e9, upload_threshold_records=5),
            flush_threshold_records=5,
        )
        agent.refresh_pinglist(t=0.0)
        agent.run_probe_round(t=10.0)  # >5 peers in the default topology
        assert agent.maybe_upload(t=10.0) is True

    def test_upload_resets_counter_window(self, world):
        agent = _agent(world)
        agent.refresh_pinglist(t=0.0)
        agent.run_probe_round(t=10.0)
        agent.maybe_upload(t=700.0)
        assert agent.counters.probes_total == 0


class TestResourceEnvelope:
    def test_cpu_and_memory_accounted(self, world):
        agent = _agent(world)
        agent.refresh_pinglist(t=0.0)
        agent.run_probe_round(t=10.0)
        assert agent.usage.cpu_seconds > 0
        assert agent.usage.memory_mb >= agent.config.base_memory_mb

    def test_memory_cap_kills_agent(self, world):
        config = AgentConfig(memory_cap_mb=24.01, base_memory_mb=24.0)
        agent = _agent(world, config=config, log_cap_bytes=50_000_000)
        agent.refresh_pinglist(t=0.0)
        with pytest.raises(ResourceBudgetExceeded):
            for round_index in range(100):
                agent.run_probe_round(t=10.0 * round_index)
        assert not agent.running
        assert "memory cap exceeded" in agent.terminated_reason

    def test_perf_counters_include_pingmesh_metrics(self, world):
        agent = _agent(world)
        agent.refresh_pinglist(t=0.0)
        agent.run_probe_round(t=10.0)
        counters = agent.perf_counters(now=100.0)
        assert "packet_drop_rate" in counters
        assert "latency_p99_us" in counters
        assert counters["peer_count"] == len(agent.pinglist)
        assert counters["fail_closed"] == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AgentConfig(pinglist_refresh_s=0)
        with pytest.raises(ValueError):
            AgentConfig(upload_period_s=-1)


class TestConditionalRefresh:
    def test_304_keeps_pinglist_and_counts_success(self, world):
        fabric, controller, store = world
        agent = _agent(world)
        agent.refresh_pinglist(t=0.0)
        first = agent.pinglist
        assert agent.refresh_pinglist(t=100.0)  # 304 path
        assert agent.pinglist is first  # same object: nothing re-parsed
        assert agent.safety.consecutive_failures == 0

    def test_regeneration_is_picked_up(self, world):
        fabric, controller, store = world
        agent = _agent(world)
        agent.refresh_pinglist(t=0.0)
        old_generation = agent.pinglist.generation
        controller.regenerate()
        agent.refresh_pinglist(t=100.0)
        assert agent.pinglist.generation == old_generation + 1


class TestUploadFailurePath:
    """maybe_upload must propagate the flush outcome, not assume success."""

    def test_failed_upload_reports_false_and_spools(self, world):
        fabric, controller, store = world
        agent = _agent(world, config=AgentConfig(upload_period_s=600.0))

        def refuse(records, t):
            raise ConnectionError("cosmos dark")

        agent.uploader.set_upload_fn(refuse)
        agent.refresh_pinglist(t=0.0)
        agent.run_probe_round(t=10.0)
        assert agent.maybe_upload(t=700.0) is False
        assert not store.has_stream("pingmesh/latency")
        # First failure spools (retry-over-time), nothing is discarded yet.
        assert agent.uploader.spooled_records > 0
        assert agent.uploader.stats.records_discarded == 0
        # The failure is published through the PA counter surface (§2.3).
        counters = agent.perf_counters(now=700.0)
        assert counters["upload_records_spooled"] > 0
        assert counters["upload_failures"] > 0

    def test_recovering_store_replays_without_duplicates(self, world):
        fabric, controller, store = world
        agent = _agent(world, config=AgentConfig(upload_period_s=600.0))

        def refuse(records, t):
            raise ConnectionError("cosmos dark")

        agent.uploader.set_upload_fn(refuse)
        agent.refresh_pinglist(t=0.0)
        agent.run_probe_round(t=10.0)
        first_round_records = agent.uploader.buffered_records
        assert agent.maybe_upload(t=700.0) is False

        # Cosmos comes back; the spooled round replays exactly once
        # alongside the new round's data — no loss, no duplicates.
        agent.uploader.set_upload_fn(None)
        agent.run_probe_round(t=710.0)
        assert agent.maybe_upload(t=1400.0) is True
        landed = store.stream("pingmesh/latency").record_count
        assert landed == agent.uploader.stats.records_uploaded
        assert landed == agent.uploader.stats.records_added
        assert agent.uploader.stats.records_replayed == first_round_records
        assert agent.uploader.spooled_records == 0
        assert agent.uploader.stats.records_discarded == 0

    def test_failed_upload_still_resets_the_window(self, world):
        agent = _agent(world, config=AgentConfig(upload_period_s=600.0))

        def refuse(records, t):
            raise ConnectionError("cosmos dark")

        agent.uploader.set_upload_fn(refuse)
        agent.refresh_pinglist(t=0.0)
        agent.run_probe_round(t=10.0)
        agent.maybe_upload(t=700.0)
        # The counters window rolled over even though the flush failed:
        # the next window's snapshot starts clean rather than replaying
        # the lost window into a later (recovered) upload.
        assert agent.counters.probes_total == 0
        assert agent.last_upload_t == 700.0
