"""Tests for the Figure 8 heatmap + pattern classification."""

import numpy as np
import pytest

from repro.core.dsa.visualization import (
    CellColor,
    LatencyHeatmap,
    LatencyPattern,
)

N_PODS = 8
PODS_PER_PODSET = 4  # two podsets


def _heatmap(fill_us=500.0):
    heatmap = LatencyHeatmap(N_PODS, PODS_PER_PODSET)
    heatmap.p99_us[:, :] = fill_us
    return heatmap


def _podset_pods(podset):
    lo = podset * PODS_PER_PODSET
    return range(lo, lo + PODS_PER_PODSET)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHeatmap(0, 1)
        with pytest.raises(ValueError):
            LatencyHeatmap(7, 4)  # pods don't divide into podsets

    def test_from_records(self):
        rows = [
            {"src_dc": 0, "dst_dc": 0, "src_pod": 0, "dst_pod": 1, "rtt_us": r}
            for r in (100.0, 200.0, 300.0)
        ]
        heatmap = LatencyHeatmap.from_records(rows, N_PODS, PODS_PER_PODSET)
        assert not np.isnan(heatmap.p99_us[0, 1])
        assert np.isnan(heatmap.p99_us[1, 0])  # no reverse data

    def test_from_records_filters_other_dcs(self):
        rows = [
            {"src_dc": 1, "dst_dc": 1, "src_pod": 0, "dst_pod": 1, "rtt_us": 100.0}
        ]
        heatmap = LatencyHeatmap.from_records(rows, N_PODS, PODS_PER_PODSET, dc=0)
        assert np.isnan(heatmap.p99_us).all()


class TestColors:
    def test_thresholds(self):
        heatmap = LatencyHeatmap(N_PODS, PODS_PER_PODSET)
        heatmap.p99_us[0, 1] = 3999.0
        heatmap.p99_us[0, 2] = 4500.0
        heatmap.p99_us[0, 3] = 5001.0
        assert heatmap.color(0, 1) == CellColor.GREEN
        assert heatmap.color(0, 2) == CellColor.YELLOW
        assert heatmap.color(0, 3) == CellColor.RED
        assert heatmap.color(1, 0) == CellColor.WHITE  # NaN

    def test_color_matrix_shape(self):
        matrix = _heatmap().color_matrix()
        assert len(matrix) == N_PODS
        assert all(len(row) == N_PODS for row in matrix)

    def test_render_ascii(self):
        art = _heatmap().render_ascii()
        lines = art.split("\n")
        assert len(lines) == N_PODS
        assert set(lines[0]) == {"."}


class TestPatternClassification:
    def test_normal_all_green(self):
        assert _heatmap().classify().pattern == LatencyPattern.NORMAL

    def test_normal_tolerates_scattered_blinkers(self):
        """Isolated red cells from small-sample P99s don't break NORMAL."""
        heatmap = _heatmap()
        heatmap.p99_us[0, 5] = 8000.0
        heatmap.p99_us[6, 2] = 8000.0
        assert heatmap.classify().pattern == LatencyPattern.NORMAL

    def test_podset_down_white_cross(self):
        heatmap = _heatmap()
        for pod in _podset_pods(1):
            heatmap.p99_us[pod, :] = np.nan
            heatmap.p99_us[:, pod] = np.nan
        result = heatmap.classify()
        assert result.pattern == LatencyPattern.PODSET_DOWN
        assert result.affected_podsets == [1]

    def test_podset_failure_red_cross(self):
        heatmap = _heatmap()
        for pod in _podset_pods(0):
            heatmap.p99_us[pod, :] = 9000.0
            heatmap.p99_us[:, pod] = 9000.0
        result = heatmap.classify()
        assert result.pattern == LatencyPattern.PODSET_FAILURE
        assert result.affected_podsets == [0]

    def test_spine_failure_green_diagonal(self):
        heatmap = LatencyHeatmap(N_PODS, PODS_PER_PODSET)
        for src in range(N_PODS):
            for dst in range(N_PODS):
                same = heatmap.podset_of(src) == heatmap.podset_of(dst)
                heatmap.p99_us[src, dst] = 500.0 if same else 9000.0
        result = heatmap.classify()
        assert result.pattern == LatencyPattern.SPINE_FAILURE
        assert result.affected_podsets == [0, 1]

    def test_all_podsets_red_is_not_podset_failure(self):
        """A fully red matrix must not classify as a single podset's
        failure (every band is red); it falls through to spine/unclassified."""
        heatmap = _heatmap(9000.0)
        result = heatmap.classify()
        assert result.pattern != LatencyPattern.PODSET_FAILURE
        assert result.pattern != LatencyPattern.NORMAL

    def test_empty_matrix_is_podset_down_everywhere(self):
        heatmap = LatencyHeatmap(N_PODS, PODS_PER_PODSET)
        result = heatmap.classify()
        assert result.pattern == LatencyPattern.PODSET_DOWN

    def test_podset_of(self):
        heatmap = _heatmap()
        assert heatmap.podset_of(0) == 0
        assert heatmap.podset_of(PODS_PER_PODSET) == 1
        assert heatmap.n_podsets == 2
