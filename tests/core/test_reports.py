"""Tests for operator reports."""

import pytest

from repro.core.dsa.database import ResultsDatabase
from repro.core.dsa.reports import ReportBuilder


@pytest.fixture()
def db():
    db = ResultsDatabase()
    for hour in range(24):
        t = (hour + 1) * 3600.0
        db.insert(
            "sla_hourly",
            [
                {
                    "t": t,
                    "scope": "datacenter",
                    "key": "dc0",
                    "probe_count": 10_000,
                    "drop_rate": 2e-5,
                    "p50_us": 260.0,
                    "p99_us": 950.0,
                },
                {
                    "t": t,
                    "scope": "pod",
                    "key": "dc0/pod3",
                    "probe_count": 500,
                    "drop_rate": 8e-4 if hour == 12 else 1e-5,
                    "p50_us": 250.0,
                    "p99_us": 4000.0 if hour == 12 else 900.0,
                },
                {
                    "t": t,
                    "scope": "pod",
                    "key": "dc0/pod0",
                    "probe_count": 500,
                    "drop_rate": 1e-5,
                    "p50_us": 250.0,
                    "p99_us": 900.0,
                },
            ],
        )
    db.insert(
        "alerts",
        [
            {
                "t": 45_000.0,
                "scope": "pod",
                "key": "dc0/pod3",
                "metric": "drop_rate",
                "value": 8e-4,
                "threshold": 1e-3,
            }
        ],
    )
    db.insert(
        "silentdrop_incidents",
        [
            {
                "t": 46_000.0,
                "dc": 0,
                "measured_drop_rate": 2e-3,
                "suspected_tier": "spine",
                "localized_switch": "dc0/spine1",
            }
        ],
    )
    db.insert("blackhole_daily", [{"t": 86_400.0, "detected": 3}])
    db.insert(
        "patterns_10min",
        [{"t": 45_600.0, "dc": 0, "pattern": "spine-failure", "affected_podsets": [0, 1]}],
    )
    return db


class TestDailyReport:
    def test_report_structure(self, db):
        report = ReportBuilder(db).daily_sla_report(t=86_400.0)
        assert "daily network SLA report" in report.text
        assert "dc0" in report.text
        assert len(report.dc_rows) == 1
        assert report.dc_rows[0]["windows"] == 24

    def test_worst_pods_ranked_by_drop_rate(self, db):
        report = ReportBuilder(db).daily_sla_report(t=86_400.0, worst_k=2)
        assert report.worst_pods[0]["key"] == "dc0/pod3"

    def test_drop_rate_is_probe_weighted(self, db):
        report = ReportBuilder(db).daily_sla_report(t=86_400.0)
        # 23 hours at 1e-5 plus one at 8e-4, equal weights.
        expected = (23 * 1e-5 + 8e-4) / 24
        pod3 = next(r for r in report.worst_pods if r["key"] == "dc0/pod3")
        assert pod3["drop_rate"] == pytest.approx(expected)

    def test_detector_sections(self, db):
        report = ReportBuilder(db).daily_sla_report(t=86_400.0)
        assert "3 black-holed ToR(s)" in report.text
        assert "dc0/spine1" in report.text

    def test_empty_database(self):
        report = ReportBuilder(ResultsDatabase()).daily_sla_report(t=86_400.0)
        assert "(no hourly SLA data in window)" in report.text
        assert report.alerts == []


class TestIncidentDigest:
    def test_digest_mentions_everything(self, db):
        digest = ReportBuilder(db).incident_digest(t=46_500.0, lookback_s=3600.0)
        assert "spine-failure" in digest
        assert "drop_rate=0.0008" in digest
        assert "culprit=dc0/spine1" in digest
        assert "NETWORK ISSUE LIKELY" in digest

    def test_quiet_digest_exonerates_the_network(self, db):
        digest = ReportBuilder(db).incident_digest(t=10_000.0, lookback_s=600.0)
        assert "network looks innocent" in digest
