"""Tests for the agent's streaming latency counters."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.agent.counters import LatencyCounters


class TestIngestion:
    def test_counts_successes_and_failures(self):
        counters = LatencyCounters()
        counters.add(True, 250e-6)
        counters.add(True, 300e-6)
        counters.add(False, 21.0)
        assert counters.probes_total == 3
        assert counters.probes_success == 2
        assert counters.probes_failed == 1

    def test_drop_signatures_classified(self):
        counters = LatencyCounters()
        counters.add(True, 250e-6)  # clean
        counters.add(True, 3.0003)  # one drop
        counters.add(True, 9.0004)  # two drops
        assert counters.probes_one_drop == 1
        assert counters.probes_two_drops == 1

    def test_drop_rate_heuristic(self):
        counters = LatencyCounters()
        for _ in range(97):
            counters.add(True, 250e-6)
        counters.add(True, 3.1)
        counters.add(True, 9.2)
        counters.add(False, 21.0)  # a failed connect is one dropped connection
        assert counters.drop_rate() == pytest.approx(3 / 100)

    def test_drop_rate_empty_window(self):
        assert LatencyCounters().drop_rate() == 0.0

    def test_fully_failed_window_is_not_a_perfect_drop_rate(self):
        """Regression: a fully black-holed server used to report 0.0 (the
        denominator was successful probes only)."""
        counters = LatencyCounters()
        for _ in range(10):
            counters.add(False, 21.0)
        assert counters.drop_rate() == 1.0

    def test_mixed_failures_and_successes(self):
        counters = LatencyCounters()
        counters.add(True, 250e-6)
        counters.add(False, 21.0)
        counters.add(False, 21.0)
        counters.add(True, 3.2)  # one-drop signature
        assert counters.drop_rate() == pytest.approx(3 / 4)

    def test_nine_second_probe_counts_one_drop(self):
        """'we only count one packet drop instead of two for every
        connection with 9 second RTT'."""
        counters = LatencyCounters()
        counters.add(True, 9.1)
        counters.add(True, 200e-6)
        assert counters.drop_rate() == pytest.approx(1 / 2)


class TestPercentiles:
    def test_percentiles_from_reservoir(self):
        counters = LatencyCounters()
        for rtt_us in range(100, 200):
            counters.add(True, rtt_us * 1e-6)
        assert counters.percentile_us(50) == pytest.approx(149.5, rel=0.02)
        assert counters.percentile_us(99) == pytest.approx(198, rel=0.02)

    def test_percentile_none_when_empty(self):
        assert LatencyCounters().percentile_us(99) is None

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            LatencyCounters().percentile_us(101)

    def test_reservoir_is_bounded(self):
        counters = LatencyCounters(reservoir_size=100, seed=1)
        for _ in range(10_000):
            counters.add(True, 250e-6)
        assert counters.memory_samples == 100

    def test_reservoir_approximates_full_distribution(self):
        rng = np.random.default_rng(7)
        samples = rng.lognormal(np.log(250e-6), 0.5, 50_000)
        counters = LatencyCounters(reservoir_size=4096, seed=2)
        for rtt in samples:
            counters.add(True, float(rtt))
        true_p50 = float(np.percentile(samples, 50)) * 1e6
        assert counters.percentile_us(50) == pytest.approx(true_p50, rel=0.05)

    def test_invalid_reservoir_size(self):
        with pytest.raises(ValueError):
            LatencyCounters(reservoir_size=0)


class TestWindows:
    def test_reset_window_clears_everything(self):
        counters = LatencyCounters()
        counters.add(True, 3.2)
        counters.add(False, 21.0)
        counters.reset_window()
        assert counters.probes_total == 0
        assert counters.drop_rate() == 0.0
        assert counters.percentile_us(50) is None

    def test_snapshot_shape(self):
        counters = LatencyCounters()
        counters.add(True, 500e-6)
        snapshot = counters.snapshot()
        assert set(snapshot) == {
            "probes_total",
            "probes_failed",
            "packet_drop_rate",
            "latency_p50_us",
            "latency_p99_us",
        }
        assert snapshot["latency_p50_us"] == pytest.approx(500.0)

    def test_snapshot_omits_latency_when_no_data(self):
        """Regression: an empty window used to report a 0.0 µs sentinel,
        indistinguishable from a genuinely instant network."""
        snapshot = LatencyCounters().snapshot()
        assert "latency_p50_us" not in snapshot
        assert "latency_p99_us" not in snapshot
        assert snapshot["packet_drop_rate"] == 0.0

    def test_snapshot_omits_latency_when_all_probes_failed(self):
        counters = LatencyCounters()
        for _ in range(5):
            counters.add(False, 21.0)
        snapshot = counters.snapshot()
        assert "latency_p50_us" not in snapshot
        assert "latency_p99_us" not in snapshot
        assert snapshot["packet_drop_rate"] == 1.0

    @given(st.lists(st.floats(min_value=1e-5, max_value=1.0), max_size=200))
    def test_drop_rate_bounded(self, rtts):
        """Property: the heuristic never exceeds 1 for sub-3s RTTs mixed
        with signature RTTs."""
        counters = LatencyCounters(reservoir_size=64)
        for rtt in rtts:
            counters.add(True, rtt)
        assert 0.0 <= counters.drop_rate() <= 1.0
