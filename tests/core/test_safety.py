"""Tests for the agent's fail-closed safety guard (§3.4.2)."""

import pytest

from repro.core.agent.safety import (
    MAX_CONTROLLER_FAILURES,
    MAX_PAYLOAD_BYTES,
    MIN_PROBE_INTERVAL_S,
    SafetyGuard,
)


class TestHardLimits:
    def test_constants_match_the_paper(self):
        assert MIN_PROBE_INTERVAL_S == 10.0
        assert MAX_PAYLOAD_BYTES == 64 * 1024

    def test_interval_clamped_to_floor(self):
        assert SafetyGuard.clamp_probe_interval(1.0) == 10.0
        assert SafetyGuard.clamp_probe_interval(9.999) == 10.0

    def test_interval_above_floor_untouched(self):
        assert SafetyGuard.clamp_probe_interval(60.0) == 60.0

    def test_payload_clamped_to_cap(self):
        assert SafetyGuard.clamp_payload(1_000_000) == MAX_PAYLOAD_BYTES
        assert SafetyGuard.clamp_payload(MAX_PAYLOAD_BYTES) == MAX_PAYLOAD_BYTES

    def test_payload_never_negative(self):
        assert SafetyGuard.clamp_payload(-5) == 0

    def test_normal_payload_untouched(self):
        assert SafetyGuard.clamp_payload(1000) == 1000


class TestFailClosed:
    def test_three_strikes_falls_closed(self):
        guard = SafetyGuard()
        assert guard.record_controller_failure() is False
        assert guard.record_controller_failure() is False
        assert guard.record_controller_failure() is True
        assert guard.fail_closed
        assert "3 times" in guard.fail_closed_reason

    def test_success_resets_the_streak(self):
        guard = SafetyGuard()
        guard.record_controller_failure()
        guard.record_controller_failure()
        guard.record_controller_success()
        assert guard.consecutive_failures == 0
        guard.record_controller_failure()
        assert not guard.fail_closed

    def test_missing_pinglist_is_immediate_stop(self):
        guard = SafetyGuard()
        guard.record_pinglist_missing()
        assert guard.fail_closed
        assert "no pinglist" in guard.fail_closed_reason

    def test_success_reopens_after_fail_closed(self):
        guard = SafetyGuard()
        for _ in range(MAX_CONTROLLER_FAILURES):
            guard.record_controller_failure()
        guard.record_controller_success()
        assert not guard.fail_closed
        assert guard.fail_closed_reason is None
