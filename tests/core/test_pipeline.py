"""Tests for the DSA pipeline cadences and wiring."""

import pytest

from repro.core.dsa.database import ResultsDatabase
from repro.core.dsa.pipeline import DsaConfig, DsaPipeline
from repro.core.dsa.records import LATENCY_STREAM
from repro.cosmos.jobs import JobManager
from repro.cosmos.store import CosmosStore
from repro.netsim.simclock import EventQueue, SimClock
from repro.netsim.topology import MultiDCTopology, TopologySpec


def _record(t, src_pod=0, dst_pod=1, rtt_us=250.0, success=True):
    return {
        "t": t,
        "src": f"dc0/s{src_pod}",
        "dst": f"dc0/d{dst_pod}",
        "src_dc": 0,
        "dst_dc": 0,
        "src_podset": src_pod // 4,
        "dst_podset": dst_pod // 4,
        "src_pod": src_pod,
        "dst_pod": dst_pod,
        "success": success,
        "rtt_us": rtt_us,
        "syn_drops": 0,
        "purpose": "tor-level",
        "qos": "high",
    }


@pytest.fixture()
def world():
    clock = SimClock()
    queue = EventQueue(clock)
    store = CosmosStore()
    db = ResultsDatabase()
    topology = MultiDCTopology.single(TopologySpec())
    pipeline = DsaPipeline(
        store=store,
        database=db,
        job_manager=JobManager(queue),
        topology=topology,
        config=DsaConfig(ingestion_delay_s=0.0),
    )
    pipeline.register_jobs()
    return clock, queue, store, db, pipeline


def _seed_records(store, until_t, every=60.0):
    records = []
    t = 0.0
    while t < until_t:
        for src_pod in range(8):
            for dst_pod in range(8):
                records.append(_record(t, src_pod, dst_pod))
        t += every
    store.append(LATENCY_STREAM, records, t=until_t)


class TestCadences:
    def test_jobs_registered(self, world):
        _clock, _queue, _store, _db, pipeline = world
        assert pipeline.job_manager.jobs() == ["dsa-10min", "dsa-1day", "dsa-1hour"]

    def test_ten_minute_job_produces_podpair_rows(self, world):
        clock, queue, store, db, pipeline = world
        _seed_records(store, 600.0)
        queue.run_for(600.0)
        assert db.row_count("podpair_10min") == 64
        assert db.row_count("patterns_10min") == 1

    def test_hourly_job_produces_slas(self, world):
        clock, queue, store, db, pipeline = world
        _seed_records(store, 3600.0)
        queue.run_for(3600.0)
        rows = db.query("sla_hourly")
        assert rows
        scopes = {row["scope"] for row in rows}
        assert "datacenter" in scopes and "server" in scopes

    def test_daily_job_produces_drop_table(self, world):
        clock, queue, store, db, pipeline = world
        _seed_records(store, 600.0)
        queue.run_for(86_400.0)
        rows = db.query("drop_daily")
        assert len(rows) == 1  # first daily window [0, 86400) has the data
        assert rows[0]["intra_pod_probes"] > 0
        assert db.query("blackhole_daily")  # the daily detector also ran

    def test_ingestion_delay_shifts_window(self):
        clock = SimClock()
        queue = EventQueue(clock)
        store = CosmosStore()
        db = ResultsDatabase()
        pipeline = DsaPipeline(
            store=store,
            database=db,
            job_manager=JobManager(queue),
            topology=MultiDCTopology.single(TopologySpec()),
            config=DsaConfig(ingestion_delay_s=600.0),
        )
        pipeline.register_jobs()
        # Records only exist in [0, 600); with a 600 s delay the job at
        # t=1200 processes exactly [0, 600).
        store.append(
            LATENCY_STREAM, [_record(float(t)) for t in range(0, 600, 10)], t=600.0
        )
        queue.run_for(600.0)
        assert db.row_count("podpair_10min") == 0  # window [−600, 0) empty
        queue.run_for(600.0)
        assert db.row_count("podpair_10min") == 1

    def test_near_real_time_latency_about_20_minutes(self):
        """§3.5: generation → consumption ≈ 20 min for the 10-min jobs."""
        config = DsaConfig(ingestion_delay_s=600.0)
        # A record generated just after a window opens waits period+delay.
        worst_case = config.near_real_time_period_s + config.ingestion_delay_s
        assert worst_case == pytest.approx(1200.0)  # 20 minutes


class TestPatternsAndQueries:
    def test_normal_pattern_recorded(self, world):
        clock, queue, store, db, pipeline = world
        _seed_records(store, 600.0)
        queue.run_for(600.0)
        pattern = pipeline.latest_pattern(0)
        assert pattern["pattern"] == "normal"

    def test_latest_pattern_none_before_first_job(self, world):
        assert world[4].latest_pattern(0) is None

    def test_latest_heatmap_on_demand(self, world):
        clock, queue, store, db, pipeline = world
        _seed_records(store, 600.0)
        clock.advance_to(600.0)
        heatmap = pipeline.latest_heatmap(0, t=600.0)
        assert heatmap.n_pods == 8

    def test_retention_expires_old_data(self):
        clock = SimClock()
        queue = EventQueue(clock)
        store = CosmosStore(extent_max_records=10)
        db = ResultsDatabase()
        pipeline = DsaPipeline(
            store=store,
            database=db,
            job_manager=JobManager(queue),
            topology=MultiDCTopology.single(TopologySpec()),
            config=DsaConfig(ingestion_delay_s=0.0, retention_s=3600.0),
        )
        pipeline.register_jobs()
        store.append(LATENCY_STREAM, [_record(1.0)] * 10, t=1.0)
        queue.run_for(2 * 86_400.0)
        assert store.stream(LATENCY_STREAM).record_count == 0


class TestSingleExtraction:
    def test_10min_tick_scans_store_once(self, world):
        clock, queue, store, db, pipeline = world
        _seed_records(store, 600.0)
        before = store.read_count
        pipeline.run_10min_job(600.0)
        # One EXTRACT shared by podpair job, heatmaps, SLA and silent-drop.
        assert store.read_count == before + 1

    def test_hourly_tick_scans_store_once(self, world):
        clock, queue, store, db, pipeline = world
        _seed_records(store, 3600.0)
        before = store.read_count
        pipeline.run_hourly_job(3600.0)
        assert store.read_count == before + 1

    def test_daily_tick_scans_store_once(self, world):
        clock, queue, store, db, pipeline = world
        _seed_records(store, 600.0)
        before = store.read_count
        pipeline.run_daily_job(86_400.0)
        assert store.read_count == before + 1

    def test_coinciding_ticks_share_no_window(self, world):
        # 10-min and hourly windows differ, but each is extracted once even
        # when both cadences fire back to back at the same t.
        clock, queue, store, db, pipeline = world
        _seed_records(store, 3600.0)
        before = store.read_count
        pipeline.run_10min_job(3600.0)
        pipeline.run_hourly_job(3600.0)
        assert store.read_count == before + 2
        # Re-running an identical window hits the cache: no extra scan.
        pipeline.run_10min_job(3600.0)
        assert store.read_count == before + 2

    def test_append_invalidates_window_cache(self, world):
        clock, queue, store, db, pipeline = world
        _seed_records(store, 600.0)
        pipeline.run_10min_job(600.0)
        before = store.read_count
        store.append(LATENCY_STREAM, [_record(599.0)], t=600.0)
        pipeline.run_10min_job(600.0)
        assert store.read_count == before + 1  # fresh data, fresh extract


class TestConfigValidation:
    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            DsaConfig(ingestion_delay_s=-1.0)
        with pytest.raises(ValueError):
            DsaConfig(hourly_period_s=0)
