"""Property tests: pattern classification under randomized noise.

Figure 8's patterns must classify correctly even when individual cells
blink from small-sample variance — these tests generate the structural
patterns programmatically, sprinkle random noise cells on top, and require
the classifier to keep naming the structure.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dsa.visualization import LatencyHeatmap, LatencyPattern

N_PODS = 8
PODS_PER_PODSET = 4


def _base(fill=500.0):
    heatmap = LatencyHeatmap(N_PODS, PODS_PER_PODSET)
    heatmap.p99_us[:, :] = fill
    return heatmap


def _sprinkle(heatmap, rng, n_cells, value=9000.0):
    """Randomly repaint up to n_cells off-structure cells."""
    for _ in range(n_cells):
        src = int(rng.integers(0, N_PODS))
        dst = int(rng.integers(0, N_PODS))
        heatmap.p99_us[src, dst] = value


class TestNoiseRobustness:
    @given(st.integers(min_value=0, max_value=2**31), st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_normal_with_scattered_red(self, seed, n_noise):
        """Up to ~10% random red cells must not break NORMAL."""
        heatmap = _base()
        _sprinkle(heatmap, np.random.default_rng(seed), n_noise)
        assert heatmap.classify().pattern == LatencyPattern.NORMAL

    @given(st.integers(min_value=0, max_value=2**31), st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_podset_down_with_noise(self, seed, n_noise):
        heatmap = _base()
        for pod in range(PODS_PER_PODSET, N_PODS):  # podset 1 dark
            heatmap.p99_us[pod, :] = np.nan
            heatmap.p99_us[:, pod] = np.nan
        rng = np.random.default_rng(seed)
        # Noise only in the healthy quadrant (dark cells have no data).
        for _ in range(n_noise):
            src = int(rng.integers(0, PODS_PER_PODSET))
            dst = int(rng.integers(0, PODS_PER_PODSET))
            heatmap.p99_us[src, dst] = 9000.0
        result = heatmap.classify()
        assert result.pattern == LatencyPattern.PODSET_DOWN
        assert result.affected_podsets == [1]

    @given(st.integers(min_value=0, max_value=2**31), st.integers(0, 4))
    @settings(max_examples=30, deadline=None)
    def test_spine_failure_with_green_blinkers(self, seed, n_noise):
        """A few cross-podset cells momentarily green must not hide the
        spine pattern."""
        heatmap = LatencyHeatmap(N_PODS, PODS_PER_PODSET)
        for src in range(N_PODS):
            for dst in range(N_PODS):
                same = heatmap.podset_of(src) == heatmap.podset_of(dst)
                heatmap.p99_us[src, dst] = 500.0 if same else 9000.0
        rng = np.random.default_rng(seed)
        for _ in range(n_noise):
            src = int(rng.integers(0, PODS_PER_PODSET))
            dst = int(rng.integers(PODS_PER_PODSET, N_PODS))
            heatmap.p99_us[src, dst] = 500.0  # a green blinker cross-podset
        assert heatmap.classify().pattern == LatencyPattern.SPINE_FAILURE

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_classifier_is_total(self, seed):
        """Any random matrix classifies to *something* without raising."""
        rng = np.random.default_rng(seed)
        heatmap = LatencyHeatmap(N_PODS, PODS_PER_PODSET)
        values = rng.choice(
            [300.0, 4500.0, 9000.0, np.nan], size=(N_PODS, N_PODS)
        )
        heatmap.p99_us[:, :] = values
        result = heatmap.classify()
        assert isinstance(result.pattern, LatencyPattern)
