"""Tests for the inter-DC analysis pipeline (§6.2)."""

import pytest

from repro.core.dsa.records import LATENCY_STREAM
from repro.core.dsa.scope_jobs import job_interdc_latency
from repro.cosmos.store import CosmosStore


def _record(t, src_dc, dst_dc, rtt_us=70_000.0, success=True):
    return {
        "t": t,
        "src": f"dc{src_dc}/s",
        "dst": f"dc{dst_dc}/d",
        "src_dc": src_dc,
        "dst_dc": dst_dc,
        "src_podset": 0,
        "dst_podset": 0,
        "src_pod": 0,
        "dst_pod": 0,
        "success": success,
        "rtt_us": rtt_us,
    }


@pytest.fixture()
def store():
    store = CosmosStore()
    records = []
    for t in range(0, 600, 60):
        records.append(_record(float(t), 0, 1))
        records.append(_record(float(t), 1, 0, rtt_us=71_000.0))
        records.append(_record(float(t), 0, 0, rtt_us=300.0))  # intra, excluded
    records.append(_record(30.0, 0, 1, rtt_us=3.1e6))  # one drop signature
    store.append(LATENCY_STREAM, records, t=600.0)
    return store


class TestInterDcJob:
    def test_one_row_per_ordered_dc_pair(self, store):
        rows = job_interdc_latency(store, 0.0, 600.0)
        pairs = {(row["src_dc"], row["dst_dc"]) for row in rows}
        assert pairs == {(0, 1), (1, 0)}

    def test_intra_dc_traffic_excluded(self, store):
        rows = job_interdc_latency(store, 0.0, 600.0)
        assert all(row["src_dc"] != row["dst_dc"] for row in rows)

    def test_metrics(self, store):
        rows = job_interdc_latency(store, 0.0, 600.0)
        row = next(r for r in rows if (r["src_dc"], r["dst_dc"]) == (0, 1))
        assert row["probe_count"] == 11
        assert row["p50_us"] == pytest.approx(70_000.0)
        assert row["drop_rate"] == pytest.approx(1 / 11)

    def test_empty_window(self, store):
        assert job_interdc_latency(store, 10_000.0, 10_600.0) == []

    def test_single_dc_store(self):
        store = CosmosStore()
        store.append(LATENCY_STREAM, [_record(10.0, 0, 0)], t=600.0)
        assert job_interdc_latency(store, 0.0, 600.0) == []


class TestPipelineIntegration:
    def test_interdc_table_populated_for_multi_dc_system(self):
        from repro.core.agent.agent import AgentConfig
        from repro.core.dsa.pipeline import DsaConfig
        from repro.core.system import PingmeshSystem, PingmeshSystemConfig
        from repro.netsim.topology import TopologySpec

        system = PingmeshSystem(
            PingmeshSystemConfig(
                specs=(
                    TopologySpec(name="a", region="us-west"),
                    TopologySpec(name="b", region="europe"),
                ),
                seed=2,
                dsa=DsaConfig(ingestion_delay_s=0.0, near_real_time_period_s=300.0),
                agent=AgentConfig(upload_period_s=120.0),
            )
        )
        system.run_for(650.0)
        rows = system.database.query("interdc_10min")
        assert rows
        # WAN propagation dominates: P50 is tens of milliseconds.
        assert all(row["p50_us"] > 10_000 for row in rows)

    def test_single_dc_system_has_no_interdc_table(self):
        from repro.core.agent.agent import AgentConfig
        from repro.core.dsa.pipeline import DsaConfig
        from repro.core.system import PingmeshSystem, PingmeshSystemConfig
        from repro.netsim.topology import TopologySpec

        system = PingmeshSystem(
            PingmeshSystemConfig(
                specs=(TopologySpec(),),
                seed=2,
                dsa=DsaConfig(ingestion_delay_s=0.0, near_real_time_period_s=300.0),
                agent=AgentConfig(upload_period_s=120.0),
            )
        )
        system.run_for(650.0)
        assert "interdc_10min" not in system.database.tables()
