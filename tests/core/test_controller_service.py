"""Tests for the replicated controller web service (§3.3.2)."""

import pytest

from repro.core.controller.generator import GeneratorConfig
from repro.core.controller.pinglist import Pinglist
from repro.core.controller.service import (
    ControllerUnavailableError,
    PinglistNotFoundError,
    PingmeshControllerService,
)
from repro.netsim.topology import MultiDCTopology, TopologySpec


@pytest.fixture()
def topology():
    return MultiDCTopology.single(TopologySpec())


@pytest.fixture()
def service(topology):
    service = PingmeshControllerService(topology, n_replicas=2)
    service.regenerate()
    return service


class TestGeneration:
    def test_regenerate_is_lazy_until_served(self, service):
        """Regeneration renders nothing: each replica's cache fills on
        first GET, holding exactly what was actually served."""
        for replica in service.replicas.values():
            assert replica.files == {}
            assert replica.generation == 1
        replica = service.replicas["controller0"]
        assert replica.serve("dc0/ps0/pod0/srv0")
        assert set(replica.files) == {"dc0/ps0/pod0/srv0"}

    def test_every_server_servable_after_regenerate(self, service, topology):
        replica = service.replicas["controller0"]
        for server in topology.all_servers():
            assert replica.serve(server.device_id)
        assert len(replica.files) == topology.n_servers

    def test_regenerate_bumps_generation(self, service):
        assert service.regenerate() == 2
        assert service.get_pinglist("dc0/ps0/pod0/srv0").generation == 2

    def test_replicas_serve_identical_content(self, service, topology):
        first, second = service.replicas.values()
        for server in topology.all_servers():
            assert first.serve(server.device_id) == second.serve(server.device_id)
        assert first.files == second.files

    def test_needs_at_least_one_replica(self, topology):
        with pytest.raises(ValueError):
            PingmeshControllerService(topology, n_replicas=0)


class TestServing:
    def test_get_pinglist_roundtrip(self, service, topology):
        server_id = topology.dc(0).servers[5].device_id
        pinglist = service.get_pinglist(server_id)
        assert pinglist.server_id == server_id
        assert len(pinglist) > 0

    def test_unknown_server_is_404(self, service):
        with pytest.raises(PinglistNotFoundError):
            service.get_pinglist("dc9/ghost")

    def test_requests_spread_over_replicas(self, service):
        for _ in range(10):
            service.get_pinglist("dc0/ps0/pod0/srv0")
        served = [replica.requests_served for replica in service.replicas.values()]
        assert served == [5, 5]

    def test_one_replica_down_is_transparent(self, service):
        service.fail_replica("controller0")
        pinglist = service.get_pinglist("dc0/ps0/pod0/srv0")
        assert pinglist is not None
        assert service.healthy_replica_count() == 1

    def test_all_replicas_down_is_unavailable(self, service):
        service.fail_replica("controller0")
        service.fail_replica("controller1")
        with pytest.raises(ControllerUnavailableError):
            service.get_pinglist("dc0/ps0/pod0/srv0")

    def test_recovered_replica_regenerates_same_files(self, service, topology):
        service.fail_replica("controller0")
        service.regenerate()  # only controller1 gets generation 2
        service.recover_replica("controller0")
        recovered = service.replicas["controller0"]
        survivor = service.replicas["controller1"]
        assert recovered.generation == survivor.generation
        for server in topology.all_servers():
            assert recovered.serve(server.device_id) == survivor.serve(
                server.device_id
            )


class TestKillSwitch:
    def test_remove_all_pinglists_serves_404(self, service):
        """'we can stop the Pingmesh Agent from working by simply removing
        all the pinglist files from the controller'."""
        service.remove_all_pinglists()
        with pytest.raises(PinglistNotFoundError):
            service.get_pinglist("dc0/ps0/pod0/srv0")

    def test_regenerate_restores_service(self, service):
        service.remove_all_pinglists()
        service.regenerate()
        assert service.get_pinglist("dc0/ps0/pod0/srv0") is not None


class TestReconfigure:
    def test_reconfigure_changes_pinglists(self, service):
        before = service.get_pinglist("dc0/ps0/pod0/srv0")
        service.reconfigure(GeneratorConfig(enable_qos_low=True))
        after = service.get_pinglist("dc0/ps0/pod0/srv0")
        assert len(after) > len(before)
        assert after.generation == before.generation + 1


class TestConditionalGet:
    def test_304_when_generation_current(self, service):
        pinglist = service.get_pinglist("dc0/ps0/pod0/srv0")
        assert (
            service.get_pinglist(
                "dc0/ps0/pod0/srv0", if_generation=pinglist.generation
            )
            is None
        )

    def test_full_body_when_stale(self, service):
        pinglist = service.get_pinglist("dc0/ps0/pod0/srv0")
        service.regenerate()
        fresh = service.get_pinglist(
            "dc0/ps0/pod0/srv0", if_generation=pinglist.generation
        )
        assert fresh is not None
        assert fresh.generation == pinglist.generation + 1

    def test_404_beats_304(self, service):
        """A removed pinglist must 404 even with a matching generation —
        the kill switch cannot be masked by caching."""
        current = service.get_pinglist("dc0/ps0/pod0/srv0").generation
        service.remove_all_pinglists()
        with pytest.raises(PinglistNotFoundError):
            service.get_pinglist("dc0/ps0/pod0/srv0", if_generation=current)

    def test_404_beats_304_on_every_replica(self, service):
        """The failover loop must not find a replica willing to 304 a
        deliberately removed pinglist — on any of them, in any order."""
        current = service.get_pinglist("dc0/ps0/pod0/srv0").generation
        service.remove_all_pinglists()
        for _ in range(2 * len(service.replicas)):  # round-robin both
            with pytest.raises(PinglistNotFoundError):
                service.get_pinglist("dc0/ps0/pod0/srv0", if_generation=current)

    def test_regeneration_after_kill_serves_full_body(self, service):
        """Once the kill switch lifts, a cached generation from before the
        kill is stale: the agent must get the new body, not a 304."""
        before = service.get_pinglist("dc0/ps0/pod0/srv0").generation
        service.remove_all_pinglists()
        service.regenerate()
        fresh = service.get_pinglist("dc0/ps0/pod0/srv0", if_generation=before)
        assert fresh is not None
        assert fresh.generation == before + 1

    def test_brownout_beats_304(self, service):
        """A browned-out replica cannot answer within the timeout, so it
        cannot 304 either — slow must read as a transport failure even
        when the agent's cached generation matches."""
        current = service.get_pinglist("dc0/ps0/pod0/srv0").generation
        for dip in service.replicas:
            service.brownout_replica(
                dip, response_delay_s=service.request_timeout_s + 1.0
            )
        with pytest.raises(ControllerUnavailableError):
            service.get_pinglist("dc0/ps0/pod0/srv0", if_generation=current)

    def test_one_browned_replica_still_304s_via_failover(self, service):
        current = service.get_pinglist("dc0/ps0/pod0/srv0").generation
        service.brownout_replica(
            "controller0", response_delay_s=service.request_timeout_s + 1.0
        )
        assert (
            service.get_pinglist("dc0/ps0/pod0/srv0", if_generation=current)
            is None
        )


class TestTopologyGrowthConsistency:
    def test_replicas_agree_after_growth(self, service, topology):
        """Stateless replicas must generate identical files after the
        topology grows — determinism is what lets any replica serve any
        agent (§3.3.2)."""
        topology.dc(0).add_podset()
        service.regenerate()
        first, second = service.replicas.values()
        for server in topology.all_servers():
            assert first.serve(server.device_id) == second.serve(server.device_id)
        assert len(first.files) == topology.n_servers
        assert first.files == second.files

    def test_new_servers_served_after_growth(self, service, topology):
        new_servers = topology.dc(0).add_podset()
        service.regenerate()
        pinglist = service.get_pinglist(new_servers[0].device_id)
        assert len(pinglist) > 0
        # And existing servers' pinglists now include the new pods.
        old = service.get_pinglist(topology.dc(0).servers[0].device_id)
        new_pods = {server.pod_index for server in new_servers}
        tor_level_pods = {
            topology.server(entry.peer_id).pod_index
            for entry in old.peers_by_purpose("tor-level")
        }
        assert new_pods & tor_level_pods


class TestReplicaRecoveryStamps:
    """recover_replica must rebuild with the fleet's generation stamp.

    The old code regenerated with the default t=0.0, so a recovered
    replica served files whose generatedAt disagreed with its siblings —
    byte-different XML for the "identical file set" the paper promises.
    """

    def test_recovered_files_match_siblings_bytewise(self, service, topology):
        service.regenerate(t=500.0)
        service.fail_replica("controller0")
        service.regenerate(t=900.0)
        service.recover_replica("controller0")
        recovered = service.replicas["controller0"]
        survivor = service.replicas["controller1"]
        for server in topology.all_servers():
            assert recovered.serve(server.device_id) == survivor.serve(
                server.device_id
            )
        assert recovered.files == survivor.files

    def test_recovered_stamp_is_the_fleet_generation_time(self, service):
        service.regenerate(t=900.0)
        service.fail_replica("controller0")
        service.recover_replica("controller0")
        xml = service.replicas["controller0"].serve("dc0/ps0/pod0/srv0")
        assert Pinglist.from_xml(xml).generated_at == 900.0

    def test_explicit_recovery_stamp_wins(self, service):
        service.regenerate(t=900.0)
        service.fail_replica("controller0")
        service.recover_replica("controller0", t=1200.0)
        xml = service.replicas["controller0"].serve("dc0/ps0/pod0/srv0")
        assert Pinglist.from_xml(xml).generated_at == 1200.0

    def test_last_generated_t_tracks_regeneration(self, service):
        assert service.last_generated_t == 0.0
        service.regenerate(t=777.0)
        assert service.last_generated_t == 777.0


class TestDownloadTelemetry:
    """Pinglist downloads are measured: per-replica 200/304/404/timeout
    counters and serving time, aggregated by ``download_stats()``."""

    def test_fresh_get_counts_a_200(self, service):
        assert service.get_pinglist("dc0/ps0/pod0/srv0", t=1.0) is not None
        stats = service.download_stats()
        assert stats["requests"] == 1
        assert stats["responses_200"] == 1
        assert stats["responses_304"] == 0

    def test_conditional_get_counts_a_304(self, service):
        pinglist = service.get_pinglist("dc0/ps0/pod0/srv0", t=1.0)
        cached = service.get_pinglist(
            "dc0/ps0/pod0/srv0", if_generation=pinglist.generation, t=2.0
        )
        assert cached is None
        stats = service.download_stats()
        assert stats["responses_200"] == 1
        assert stats["responses_304"] == 1
        assert stats["requests"] == 2

    def test_kill_switch_404s_are_counted(self, service):
        service.remove_all_pinglists()
        with pytest.raises(PinglistNotFoundError):
            service.get_pinglist("dc0/ps0/pod0/srv0", t=1.0)
        stats = service.download_stats()
        assert stats["responses_404"] == 1
        assert stats["responses_200"] == 0

    def test_brownout_timeouts_counted_separately_not_as_requests(self, service):
        """A browned-out replica attempt fails over: it is a timeout on
        that replica, not an answered request, so it must not inflate
        the answered-request total."""
        service.brownout_replica("controller0", response_delay_s=10.0)
        service.brownout_replica("controller1", response_delay_s=10.0)
        with pytest.raises(ControllerUnavailableError):
            service.get_pinglist("dc0/ps0/pod0/srv0", t=1.0)
        stats = service.download_stats()
        assert stats["responses_timeout"] == 2
        assert stats["requests"] == 0

    def test_serve_time_accumulates_response_delays(self, service):
        service.request_timeout_s = 60.0  # slow, but inside the deadline
        service.brownout_replica("controller0", response_delay_s=2.0)
        service.brownout_replica("controller1", response_delay_s=2.0)
        service.get_pinglist("dc0/ps0/pod0/srv0", t=1.0)
        stats = service.download_stats()
        assert stats["serve_time_s"] == 2.0

    def test_per_replica_breakdown_sums_to_totals(self, service):
        for i in range(6):
            service.get_pinglist("dc0/ps0/pod0/srv0", t=float(i))
        stats = service.download_stats()
        assert stats["requests"] == sum(
            r["requests"] for r in stats["per_replica"].values()
        )
        assert stats["responses_200"] == sum(
            r["responses_200"] for r in stats["per_replica"].values()
        )
