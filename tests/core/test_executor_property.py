"""Property test: process execution is bit-identical to serial.

Hypothesis drives a random script of fleet rounds interleaved with the
events that most plausibly break RNG-state accounting — fault injection
(degrading class pairs to the serial per-pair path), replica flaps
(touching the controller mid-run) and topology growth (new shards joining
between rounds).  Whatever the script, a process-pool fleet must produce
the same probes, the same uploaded rows, the same SNMP sums and the same
per-shard RNG end states as a serial fleet under the same seed.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent.agent import AgentConfig
from repro.core.dsa.records import CLASS_STREAM
from repro.core.sharded import ShardedFleet
from repro.core.system import PingmeshSystem, PingmeshSystemConfig
from repro.netsim.faults import SilentRandomDrop
from repro.netsim.topology import TopologySpec
from repro.stream.plane import StreamConfig

_SPEC = TopologySpec(n_podsets=2, pods_per_podset=2, servers_per_pod=2, n_spines=4)

OPS = ("round", "fault", "clear", "grow", "flap")


def _fingerprint(system, fleet):
    for key in sorted(fleet.shards):
        shard = fleet.shards[key]
        shard.probe_uploader.flush(1e9)
        shard.class_uploader.flush(1e9)
    rows = {}
    for stream in ("pingmesh/latency", CLASS_STREAM):
        try:
            rows[stream] = sorted(
                json.dumps(row, sort_keys=True, default=str)
                for row in system.store.read(stream)
            )
        except KeyError:  # stream never written (e.g. no degraded pairs)
            rows[stream] = []
    rng_states = {
        key: json.dumps(
            fleet.shards[key].rng.bit_generator.state, sort_keys=True, default=str
        )
        for key in sorted(fleet.shards)
    }
    snmp = [
        (s.device_id, s.counters.packets_forwarded, s.counters.silent_drops)
        for s in system.topology.dc(0).all_switches()
    ]
    return (fleet.probes_sent, system.fabric.probes_carried, rows, rng_states, snmp)


def _run_script(ops, seed, executor, workers):
    system = PingmeshSystem(
        PingmeshSystemConfig(
            specs=(_SPEC,),
            seed=seed,
            agent=AgentConfig(round_mode="class"),
            stream=StreamConfig(shard_aggregation=True),
        )
    )
    with ShardedFleet(system, workers=workers, executor=executor) as fleet:
        t = 0.0
        fault = None
        grown = False
        for op in ops:
            if op == "round":
                fleet.run_round(t)
                t += 30.0
            elif op == "fault" and fault is None:
                spine = system.topology.dc(0).spines[0]
                fault = system.fabric.faults.inject(
                    SilentRandomDrop(switch_id=spine.device_id, drop_prob=0.25)
                )
            elif op == "clear" and fault is not None:
                system.fabric.faults.clear(fault)
                fault = None
            elif op == "grow" and not grown:
                system.add_podset(0)  # one growth keeps examples cheap
                grown = True
            elif op == "flap":
                system.controller.fail_replica("controller0")
                system.controller.recover_replica("controller0")
        fleet.run_round(t)
        return _fingerprint(system, fleet)


@settings(max_examples=8, deadline=None)
@given(
    ops=st.lists(st.sampled_from(OPS), min_size=1, max_size=5),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_process_pool_matches_serial_bit_for_bit(ops, seed):
    serial = _run_script(ops, seed, "serial", 0)
    process = _run_script(ops, seed, "process", 2)
    assert serial == process
