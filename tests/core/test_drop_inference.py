"""Tests for the §4.2 drop-rate heuristic."""

import numpy as np
import pytest

from repro.core.dsa.drop_inference import (
    classify_probe,
    estimate_drop_rate,
    estimate_drop_rate_from_arrays,
)
from repro.netsim.fabric import Fabric
from repro.netsim.topology import TopologySpec


class TestClassification:
    def test_clean_probe(self):
        assert classify_probe(True, 250e-6) == 0

    def test_one_drop_window(self):
        assert classify_probe(True, 3.0002) == 1
        assert classify_probe(True, 8.9) == 1

    def test_two_drop_window(self):
        assert classify_probe(True, 9.0003) == 2
        assert classify_probe(True, 20.0) == 2

    def test_failed_probe_excluded(self):
        """'for failed probes, we cannot differentiate between packet drops
        and receiving server failure'."""
        assert classify_probe(False, 21.0) is None

    def test_boundary_just_below_3s(self):
        assert classify_probe(True, 2.999) == 0


class TestEstimateFromRows:
    def test_paper_formula(self):
        rows = (
            [{"success": True, "rtt_us": 250.0}] * 96
            + [{"success": True, "rtt_us": 3.0e6}] * 2
            + [{"success": True, "rtt_us": 9.1e6}] * 2
            + [{"success": False, "rtt_us": 21e6}] * 10
        )
        estimate = estimate_drop_rate(rows)
        assert estimate.successful == 100
        assert estimate.one_drop == 2
        assert estimate.two_drop == 2
        # (3s probes + 9s probes) / successful — 9s counts ONE drop.
        assert estimate.rate == pytest.approx(4 / 100)

    def test_empty_input(self):
        assert estimate_drop_rate([]).rate == 0.0

    def test_all_failed_is_zero_not_nan(self):
        rows = [{"success": False, "rtt_us": 21e6}] * 5
        assert estimate_drop_rate(rows).rate == 0.0

    def test_repr_is_informative(self):
        estimate = estimate_drop_rate([{"success": True, "rtt_us": 3.2e6}])
        assert "one_drop=1" in repr(estimate)


class TestEstimateFromArrays:
    def test_matches_row_version(self):
        rtts = np.array([250e-6, 3.1, 9.2, 0.0005, 21.0])
        success = np.array([True, True, True, True, False])
        rows = [
            {"success": bool(s), "rtt_us": r * 1e6} for r, s in zip(rtts, success)
        ]
        a = estimate_drop_rate_from_arrays(rtts, success)
        b = estimate_drop_rate(rows)
        assert a.rate == b.rate
        assert (a.successful, a.one_drop, a.two_drop) == (
            b.successful,
            b.one_drop,
            b.two_drop,
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            estimate_drop_rate_from_arrays(np.zeros(3), np.zeros(4, dtype=bool))


class TestAccuracyAgainstGroundTruth:
    def test_heuristic_recovers_injected_drop_rate(self):
        """'We have verified the accuracy of the heuristic' — the estimate
        must track the fabric's analytic attempt-drop probability."""
        fabric = Fabric.single_dc(TopologySpec(), seed=17)
        dc = fabric.topology.dc(0)
        a = dc.servers_in_podset(0)[0]
        b = dc.servers_in_podset(1)[0]
        truth = fabric.expected_attempt_drop(a, b)
        batch = fabric.batch_probe(a, b, 3_000_000)
        estimate = estimate_drop_rate_from_arrays(batch.rtt_s, batch.success)
        assert estimate.rate == pytest.approx(truth, rel=0.2)
