"""Tests for network-aware server selection (§6.2)."""

import pytest

from repro.autopilot.perfcounter import PerfcounterAggregator
from repro.core.dsa.server_selection import ServerSelector
from repro.netsim.simclock import EventQueue, SimClock


@pytest.fixture()
def pa():
    queue = EventQueue(SimClock())
    pa = PerfcounterAggregator(queue, collection_period_s=100.0)
    profiles = {
        "clean": {"packet_drop_rate": 1e-5, "latency_p99_us": 800.0},
        "slow": {"packet_drop_rate": 2e-5, "latency_p99_us": 3000.0},
        "droppy": {"packet_drop_rate": 5e-4, "latency_p99_us": 900.0},
        "bad": {"packet_drop_rate": 5e-3, "latency_p99_us": 9000.0},
    }
    for server_id, counters in profiles.items():
        pa.register_producer(server_id, lambda t, c=counters: dict(c))
    pa.start()
    queue.run_for(100.0)
    return pa


class TestScoring:
    def test_clean_server_eligible(self, pa):
        score = ServerSelector(pa).score("clean")
        assert score.eligible
        assert score.drop_rate == 1e-5

    def test_over_threshold_disqualified(self, pa):
        selector = ServerSelector(pa)
        bad = selector.score("bad")
        assert not bad.eligible
        assert "drop rate" in bad.reason

    def test_latency_disqualification(self, pa):
        selector = ServerSelector(pa, max_p99_us=2000.0)
        slow = selector.score("slow")
        assert not slow.eligible
        assert "P99" in slow.reason

    def test_missing_counters(self, pa):
        strict = ServerSelector(pa)
        assert not strict.score("ghost").eligible
        lenient = ServerSelector(pa, require_counters=False)
        assert lenient.score("ghost").eligible

    def test_threshold_validation(self, pa):
        with pytest.raises(ValueError):
            ServerSelector(pa, max_drop_rate=0)


class TestRankingAndPicking:
    def test_rank_orders_by_drop_then_latency(self, pa):
        ranked = ServerSelector(pa).rank(["droppy", "slow", "clean", "bad"])
        assert [s.server_id for s in ranked[:3]] == ["clean", "slow", "droppy"]
        assert ranked[-1].server_id == "bad"
        assert not ranked[-1].eligible

    def test_pick_returns_best_n(self, pa):
        assert ServerSelector(pa).pick(["droppy", "slow", "clean"], n=2) == [
            "clean",
            "slow",
        ]

    def test_pick_excludes_ineligible(self, pa):
        picked = ServerSelector(pa).pick(["bad", "clean"], n=2)
        assert picked == ["clean"]

    def test_pick_validation(self, pa):
        with pytest.raises(ValueError):
            ServerSelector(pa).pick(["clean"], n=0)

    def test_pick_from_empty_pool(self, pa):
        assert ServerSelector(pa).pick([], n=3) == []
