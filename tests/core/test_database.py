"""Tests for the results database."""

import pytest

from repro.core.dsa.database import ResultsDatabase


@pytest.fixture()
def db():
    database = ResultsDatabase()
    database.insert(
        "sla",
        [
            {"t": 600.0, "key": "dc0", "p99_us": 900.0},
            {"t": 1200.0, "key": "dc0", "p99_us": 950.0},
            {"t": 1200.0, "key": "dc1", "p99_us": 700.0},
        ],
    )
    return database


class TestInsertAndQuery:
    def test_insert_counts(self, db):
        assert db.row_count("sla") == 3
        assert db.insert("sla", []) == 0

    def test_query_all(self, db):
        assert len(db.query("sla")) == 3

    def test_query_where(self, db):
        rows = db.query("sla", where=lambda r: r["key"] == "dc0")
        assert len(rows) == 2

    def test_query_order_and_limit(self, db):
        rows = db.query("sla", order_by="p99_us", desc=True, limit=1)
        assert rows[0]["p99_us"] == 950.0
        with pytest.raises(ValueError):
            db.query("sla", limit=-1)

    def test_unknown_table_reads_empty(self, db):
        assert db.query("missing") == []
        assert db.row_count("missing") == 0

    def test_query_returns_copies(self, db):
        db.query("sla")[0]["p99_us"] = -1
        assert all(row["p99_us"] > 0 for row in db.query("sla"))

    def test_insert_copies_rows(self, db):
        row = {"t": 1.0, "x": 1}
        db.insert("other", [row])
        row["x"] = 99
        assert db.query("other")[0]["x"] == 1

    def test_tables_listing(self, db):
        db.insert("alerts", [{"t": 0.0}])
        assert db.tables() == ["alerts", "sla"]


class TestLatestAndRetention:
    def test_latest_by_time(self, db):
        latest = db.latest("sla")
        assert latest["t"] == 1200.0

    def test_latest_of_empty_table(self, db):
        assert db.latest("missing") is None

    def test_expire_before(self, db):
        removed = db.expire_before("sla", 1000.0)
        assert removed == 1
        assert db.row_count("sla") == 2

    def test_expire_unknown_table(self, db):
        assert db.expire_before("missing", 1000.0) == 0
