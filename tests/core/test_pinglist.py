"""Tests for pinglist models and XML round-tripping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.controller.pinglist import (
    PingParameters,
    Pinglist,
    PinglistEntry,
    PinglistParseError,
)


def _pinglist(entries=None, **params):
    return Pinglist(
        server_id="dc0/ps0/pod0/srv0",
        generation=3,
        generated_at=123.5,
        parameters=PingParameters(**params),
        entries=entries
        or [
            PinglistEntry("dc0/ps0/pod0/srv1", "10.0.0.2", "intra-pod"),
            PinglistEntry("dc0/ps0/pod1/srv0", "10.0.0.9", "tor-level"),
            PinglistEntry("dc1/ps0/pod0/srv0", "11.0.0.1", "inter-dc", qos="low"),
            PinglistEntry(
                "dc0/ps1/pod4/srv0", "10.0.0.33", "tor-level", payload_bytes=1000
            ),
        ],
    )


class TestModels:
    def test_parameters_validation(self):
        with pytest.raises(ValueError):
            PingParameters(probe_interval_s=0)
        with pytest.raises(ValueError):
            PingParameters(payload_bytes=-1)
        with pytest.raises(ValueError):
            PingParameters(tcp_port_high=0)

    def test_port_for_qos(self):
        params = PingParameters(tcp_port_high=81, tcp_port_low=82)
        assert params.port_for("high") == 81
        assert params.port_for("low") == 82
        with pytest.raises(ValueError):
            params.port_for("mid")

    def test_entry_validation(self):
        with pytest.raises(ValueError):
            PinglistEntry("x", "10.0.0.1", purpose="warp")
        with pytest.raises(ValueError):
            PinglistEntry("x", "10.0.0.1", qos="medium")
        with pytest.raises(ValueError):
            PinglistEntry("x", "10.0.0.1", payload_bytes=-5)

    def test_len_and_purpose_filter(self):
        pinglist = _pinglist()
        assert len(pinglist) == 4
        assert len(pinglist.peers_by_purpose("tor-level")) == 2
        assert len(pinglist.peers_by_purpose("vip")) == 0
        with pytest.raises(ValueError):
            pinglist.peers_by_purpose("nothing")


class TestXmlRoundTrip:
    def test_roundtrip_preserves_everything(self):
        original = _pinglist(probe_interval_s=30.0, payload_bytes=0)
        parsed = Pinglist.from_xml(original.to_xml())
        assert parsed.server_id == original.server_id
        assert parsed.generation == original.generation
        assert parsed.generated_at == original.generated_at
        assert parsed.parameters == original.parameters
        assert parsed.entries == original.entries

    def test_empty_pinglist_roundtrip(self):
        original = _pinglist(entries=[])
        original.entries = []
        parsed = Pinglist.from_xml(original.to_xml())
        assert parsed.entries == []

    def test_xml_is_standard_and_humanish(self):
        xml = _pinglist().to_xml()
        assert xml.startswith("<Pinglist")
        assert "<Peers>" in xml
        assert 'purpose="inter-dc"' in xml

    def test_malformed_xml_rejected(self):
        with pytest.raises(PinglistParseError):
            Pinglist.from_xml("<Pinglist><unclosed>")

    def test_wrong_root_rejected(self):
        with pytest.raises(PinglistParseError):
            Pinglist.from_xml("<NotAPinglist/>")

    def test_missing_parameters_rejected(self):
        with pytest.raises(PinglistParseError):
            Pinglist.from_xml(
                '<Pinglist server="s" generation="1" generatedAt="0.0"><Peers/></Pinglist>'
            )

    def test_bad_attribute_types_rejected(self):
        xml = _pinglist().to_xml().replace('generation="3"', 'generation="three"')
        with pytest.raises(PinglistParseError):
            Pinglist.from_xml(xml)

    @given(
        st.floats(min_value=1.0, max_value=3600.0, allow_nan=False),
        st.integers(min_value=0, max_value=65_536),
        st.integers(min_value=0, max_value=500),
    )
    def test_roundtrip_property(self, interval, payload, n_peers):
        entries = [
            PinglistEntry(f"srv{i}", f"10.0.{i // 256}.{i % 256 or 1}", "tor-level")
            for i in range(min(n_peers, 40))
        ]
        original = Pinglist(
            server_id="s",
            generation=1,
            generated_at=0.0,
            parameters=PingParameters(
                probe_interval_s=interval, payload_bytes=payload
            ),
            entries=entries,
        )
        parsed = Pinglist.from_xml(original.to_xml())
        assert parsed.parameters.probe_interval_s == interval
        assert len(parsed.entries) == len(entries)


class TestParserRobustness:
    @given(st.text(max_size=300))
    def test_arbitrary_text_never_crashes_the_parser(self, text):
        """Fuzz: any input either parses or raises PinglistParseError."""
        try:
            Pinglist.from_xml(text)
        except PinglistParseError:
            pass

    @given(st.text(alphabet="<>/ab \"'=", max_size=120))
    def test_tag_soup_never_crashes_the_parser(self, soup):
        try:
            Pinglist.from_xml("<Pinglist" + soup)
        except PinglistParseError:
            pass
