"""Tests for the latency record schema."""

import pytest

from repro.core.dsa.records import LATENCY_STREAM, RECORD_COLUMNS, make_record
from repro.netsim.fabric import Fabric
from repro.netsim.topology import TopologySpec


@pytest.fixture(scope="module")
def fabric():
    return Fabric.single_dc(TopologySpec(), seed=4)


class TestMakeRecord:
    def test_success_record_fields(self, fabric):
        dc = fabric.topology.dc(0)
        result = fabric.probe(dc.servers[0], dc.servers[30], t=42.0)
        record = make_record(fabric.topology, result, purpose="tor-level")
        assert set(RECORD_COLUMNS) <= set(record)
        assert record["t"] == 42.0
        assert record["src"] == dc.servers[0].device_id
        assert record["success"] is True
        assert record["rtt_us"] == pytest.approx(result.rtt_s * 1e6)
        assert record["error"] is None

    def test_topology_coordinates(self, fabric):
        dc = fabric.topology.dc(0)
        src = dc.servers_in_podset(0)[0]
        dst = dc.servers_in_podset(1)[0]
        record = make_record(fabric.topology, fabric.probe(src, dst))
        assert record["src_podset"] == 0
        assert record["dst_podset"] == 1
        assert record["src_pod"] == src.pod_index
        assert record["dst_pod"] == dst.pod_index
        assert record["src_dc"] == record["dst_dc"] == 0

    def test_failed_probe_record(self, fabric):
        dc = fabric.topology.dc(0)
        victim = dc.servers[7]
        victim.bring_down()
        try:
            result = fabric.probe(dc.servers[0], victim)
        finally:
            victim.bring_up()
        record = make_record(fabric.topology, result)
        assert record["success"] is False
        assert record["error"] == "timeout"
        assert record["payload_rtt_us"] is None

    def test_payload_rtt_included(self, fabric):
        dc = fabric.topology.dc(0)
        result = fabric.probe(dc.servers[0], dc.servers[1], payload_bytes=1000)
        record = make_record(fabric.topology, result)
        assert record["payload_rtt_us"] is not None
        assert record["payload_rtt_us"] > 0

    def test_purpose_and_qos_tagged(self, fabric):
        dc = fabric.topology.dc(0)
        result = fabric.probe(dc.servers[0], dc.servers[1])
        record = make_record(fabric.topology, result, purpose="intra-pod", qos="low")
        assert record["purpose"] == "intra-pod"
        assert record["qos"] == "low"

    def test_stream_name_constant(self):
        assert LATENCY_STREAM == "pingmesh/latency"
