"""Tests for ECMP path computation."""

import pytest

from repro.netsim.addressing import FiveTuple
from repro.netsim.devices import DeviceKind
from repro.netsim.routing import NoRouteError, PathScope, Router, classify_scope
from repro.netsim.topology import MultiDCTopology, TopologySpec


@pytest.fixture()
def multi():
    return MultiDCTopology(
        [
            TopologySpec(name="dc-a", region="us-west", n_spines=8),
            TopologySpec(name="dc-b", region="europe"),
        ]
    )


@pytest.fixture()
def router(multi):
    return Router(multi)


def _flow(src, dst, src_port=50_000, dst_port=81):
    return FiveTuple(src.ip, src_port, dst.ip, dst_port)


class TestScopeClassification:
    def test_same_host(self, multi):
        server = multi.dc(0).servers[0]
        assert classify_scope(multi, server, server) == PathScope.SAME_HOST

    def test_intra_pod(self, multi):
        a, b = multi.dc(0).servers_in_pod(0)[:2]
        assert classify_scope(multi, a, b) == PathScope.INTRA_POD

    def test_intra_podset(self, multi):
        dc = multi.dc(0)
        a = dc.servers_in_pod(0)[0]
        b = dc.servers_in_pod(1)[0]
        assert classify_scope(multi, a, b) == PathScope.INTRA_PODSET

    def test_intra_dc(self, multi):
        dc = multi.dc(0)
        a = dc.servers_in_podset(0)[0]
        b = dc.servers_in_podset(1)[0]
        assert classify_scope(multi, a, b) == PathScope.INTRA_DC

    def test_inter_dc(self, multi):
        a = multi.dc(0).servers[0]
        b = multi.dc(1).servers[0]
        assert classify_scope(multi, a, b) == PathScope.INTER_DC


class TestPathShapes:
    def test_same_host_has_no_hops(self, router, multi):
        server = multi.dc(0).servers[0]
        path = router.path(server, server, _flow(server, server))
        assert path.hops == []
        assert path.scope == PathScope.SAME_HOST

    def test_intra_pod_is_single_tor(self, router, multi):
        a, b = multi.dc(0).servers_in_pod(0)[:2]
        path = router.path(a, b, _flow(a, b))
        assert [hop.kind for hop in path.hops] == [DeviceKind.TOR]
        assert path.hops[0] is multi.dc(0).tor_of(a)

    def test_intra_podset_is_tor_leaf_tor(self, router, multi):
        dc = multi.dc(0)
        a = dc.servers_in_pod(0)[0]
        b = dc.servers_in_pod(1)[0]
        path = router.path(a, b, _flow(a, b))
        assert [hop.kind for hop in path.hops] == [
            DeviceKind.TOR,
            DeviceKind.LEAF,
            DeviceKind.TOR,
        ]

    def test_intra_dc_crosses_spine(self, router, multi):
        dc = multi.dc(0)
        a = dc.servers_in_podset(0)[0]
        b = dc.servers_in_podset(1)[0]
        path = router.path(a, b, _flow(a, b))
        assert [hop.kind for hop in path.hops] == [
            DeviceKind.TOR,
            DeviceKind.LEAF,
            DeviceKind.SPINE,
            DeviceKind.LEAF,
            DeviceKind.TOR,
        ]
        assert path.wan_rtt == 0.0

    def test_inter_dc_crosses_borders_and_wan(self, router, multi):
        a = multi.dc(0).servers[0]
        b = multi.dc(1).servers[0]
        path = router.path(a, b, _flow(a, b))
        kinds = [hop.kind for hop in path.hops]
        assert kinds == [
            DeviceKind.TOR,
            DeviceKind.LEAF,
            DeviceKind.SPINE,
            DeviceKind.BORDER,
            DeviceKind.BORDER,
            DeviceKind.SPINE,
            DeviceKind.LEAF,
            DeviceKind.TOR,
        ]
        assert path.wan_rtt > 0
        # Borders belong to each side's DC respectively.
        assert path.hops[3].dc_index == 0
        assert path.hops[4].dc_index == 1


class TestEcmp:
    def test_path_is_deterministic_per_flow(self, router, multi):
        dc = multi.dc(0)
        a = dc.servers_in_podset(0)[0]
        b = dc.servers_in_podset(1)[0]
        flow = _flow(a, b)
        first = router.path(a, b, flow).hop_ids()
        assert all(
            router.path(a, b, flow).hop_ids() == first for _ in range(10)
        )

    def test_source_port_spreads_over_spines(self, router, multi):
        dc = multi.dc(0)
        a = dc.servers_in_podset(0)[0]
        b = dc.servers_in_podset(1)[0]
        spines = set()
        for port in range(50_000, 50_200):
            path = router.path(a, b, _flow(a, b, src_port=port))
            spines.add(path.hops[2].device_id)
        # 200 ports over 8 spines: expect most spines exercised.
        assert len(spines) >= 6

    def test_reverse_flow_may_take_different_spine(self, router, multi):
        dc = multi.dc(0)
        a = dc.servers_in_podset(0)[0]
        b = dc.servers_in_podset(1)[0]
        differs = False
        for port in range(50_000, 50_050):
            flow = _flow(a, b, src_port=port)
            fwd = router.path(a, b, flow).hops[2]
            rev = router.path(b, a, flow.reversed()).hops[2]
            if fwd is not rev:
                differs = True
                break
        assert differs


class TestFailureHandling:
    def test_down_spine_is_routed_around(self, router, multi):
        dc = multi.dc(0)
        a = dc.servers_in_podset(0)[0]
        b = dc.servers_in_podset(1)[0]
        victim = dc.spines[0]
        victim.bring_down()
        try:
            for port in range(50_000, 50_100):
                path = router.path(a, b, _flow(a, b, src_port=port))
                assert victim not in path.hops
        finally:
            victim.bring_up()

    def test_isolated_switch_is_also_excluded(self, router, multi):
        dc = multi.dc(0)
        a = dc.servers_in_podset(0)[0]
        b = dc.servers_in_podset(1)[0]
        victim = dc.spines[1]
        victim.isolate()
        try:
            for port in range(50_000, 50_100):
                path = router.path(a, b, _flow(a, b, src_port=port))
                assert victim not in path.hops
        finally:
            victim.bring_up()

    def test_all_leaves_down_raises_no_route(self, router, multi):
        dc = multi.dc(0)
        a = dc.servers_in_pod(0)[0]
        b = dc.servers_in_pod(1)[0]
        for leaf in dc.leaves_of(0):
            leaf.bring_down()
        try:
            with pytest.raises(NoRouteError):
                router.path(a, b, _flow(a, b))
        finally:
            for leaf in dc.leaves_of(0):
                leaf.bring_up()

    def test_down_tor_raises_no_route(self, router, multi):
        dc = multi.dc(0)
        a, b = dc.servers_in_pod(0)[0], dc.servers_in_pod(1)[0]
        tor = dc.tor_of(a)
        tor.bring_down()
        try:
            with pytest.raises(NoRouteError):
                router.path(a, b, _flow(a, b))
        finally:
            tor.bring_up()

    def test_faulty_but_up_switch_stays_on_path(self, router, multi):
        # Routing must NOT avoid a switch that is up but dropping packets —
        # that blindness is what makes silent drops a hard problem (§5).
        dc = multi.dc(0)
        a = dc.servers_in_podset(0)[0]
        b = dc.servers_in_podset(1)[0]
        seen = set()
        for port in range(50_000, 50_100):
            path = router.path(a, b, _flow(a, b, src_port=port))
            seen.add(path.hops[2].device_id)
        assert len(seen) > 1  # spines still in rotation regardless of faults
