"""Tests for the Fabric engine: probes, batches, faults, counters."""

import numpy as np
import pytest

from repro.netsim.fabric import Fabric
from repro.netsim.faults import BlackholeType1, BlackholeType2, SilentRandomDrop
from repro.netsim.routing import PathScope
from repro.netsim.topology import MultiDCTopology, TopologySpec
from repro.netsim.workload import profile_for


@pytest.fixture()
def fabric():
    return Fabric.single_dc(TopologySpec(), seed=7)


@pytest.fixture()
def dc(fabric):
    return fabric.topology.dc(0)


class TestScalarProbe:
    def test_healthy_probe_succeeds_with_sub_ms_rtt(self, fabric, dc):
        result = fabric.probe(dc.servers[0], dc.servers[1])
        assert result.success
        assert result.error is None
        assert 50e-6 < result.rtt_s < 0.1
        assert result.scope == PathScope.INTRA_POD

    def test_probe_accepts_device_ids(self, fabric, dc):
        result = fabric.probe(dc.servers[0].device_id, dc.servers[9].device_id)
        assert result.success

    def test_source_ports_rotate(self, fabric, dc):
        ports = {
            fabric.probe(dc.servers[0], dc.servers[1]).flow.src_port
            for _ in range(20)
        }
        assert len(ports) == 20

    def test_pinned_source_port_respected(self, fabric, dc):
        result = fabric.probe(dc.servers[0], dc.servers[1], src_port=55_123)
        assert result.flow.src_port == 55_123

    def test_down_destination_times_out(self, fabric, dc):
        victim = dc.servers[5]
        victim.bring_down()
        result = fabric.probe(dc.servers[0], victim)
        assert not result.success
        assert result.error == "timeout"
        assert result.rtt_s == pytest.approx(21.0)

    def test_down_source_reports_agent_down(self, fabric, dc):
        src = dc.servers[3]
        src.bring_down()
        result = fabric.probe(src, dc.servers[0])
        assert result.error == "agent_down"

    def test_refused_probe_is_not_counted_as_carried(self, fabric, dc):
        """A src-host-down probe never entered the network: it must land in
        ``probes_refused``, not ``probes_carried`` (the old accounting
        counted it as carried and broke the conservation ledger)."""
        fabric.probe(dc.servers[0], dc.servers[1])
        src = dc.servers[3]
        src.bring_down()
        fabric.probe(src, dc.servers[0])
        assert (fabric.probes_carried, fabric.probes_refused) == (1, 1)

    def test_probe_ledger_matches_observer_count(self, fabric, dc):
        """carried + refused - batched == probes the observers saw.

        With observers attached, *every* probe source reports — the
        scalar path, the refused path, and batch_probe's bulk path —
        so the batched column stays zero and the ledger covers all 52.
        """
        seen = []
        fabric.probe_observers.append(lambda *args: seen.append(args))
        fabric.probe(dc.servers[0], dc.servers[1])
        dc.servers[3].bring_down()
        fabric.probe(dc.servers[3], dc.servers[0])
        fabric.batch_probe(dc.servers[0], dc.servers[40], n=50)
        ledger = (
            fabric.probes_carried
            + fabric.probes_refused
            - fabric.probes_carried_batched
        )
        assert ledger == len(seen) == 52

    def test_batch_probe_reports_every_probe_to_observers(self, fabric, dc):
        """Regression: the healthy vectorized batch path used to bypass
        ``probe_observers`` entirely (only controller-scheduled probes
        were observed), leaving injected/bulk work invisible to the
        chaos probe-conservation invariant."""
        seen = []
        fabric.probe_observers.append(lambda *args: seen.append(args))
        src, dst = dc.servers[0], dc.servers[40]
        fabric.batch_probe(src, dst, n=25, t=5.0, dst_port=8080)
        assert len(seen) == 25
        assert set(seen) == {(src.device_id, dst.device_id, 5.0, 0, 8080)}
        # Observed bulk probes count as observed, not batched: the
        # conservation ledger holds without a correction column.
        assert fabric.probes_carried_batched == 0
        assert fabric.probes_carried == 25

    def test_batch_probe_unobserved_path_still_counts_batched(self, fabric, dc):
        """Without observers the bulk path keeps its cheap accounting:
        carries land in the ``batched`` ledger column so conservation
        still balances for observer-free users (benches, notebooks)."""
        fabric.batch_probe(dc.servers[0], dc.servers[40], n=30)
        assert fabric.probes_carried_batched == 30
        assert fabric.probes_carried == 30

    def test_no_route_when_leaf_tier_down(self, fabric, dc):
        for leaf in dc.leaves_of(0):
            leaf.bring_down()
        a = dc.servers_in_pod(0)[0]
        b = dc.servers_in_pod(1)[0]
        result = fabric.probe(a, b)
        assert result.error == "no_route"

    def test_forward_hops_recorded(self, fabric, dc):
        a = dc.servers_in_podset(0)[0]
        b = dc.servers_in_podset(1)[0]
        result = fabric.probe(a, b)
        assert len(result.forward_hops) == 5
        assert any("spine" in hop for hop in result.forward_hops)

    def test_payload_probe_reports_both_rtts(self, fabric, dc):
        result = fabric.probe(dc.servers[0], dc.servers[20], payload_bytes=1000)
        assert result.success
        assert result.payload_rtt_s is not None
        assert result.payload_rtt_s > 0

    def test_counters_increment(self, fabric, dc):
        tor = dc.tor_of(dc.servers[0])
        before = tor.counters.packets_forwarded
        fabric.probe(dc.servers[0], dc.servers[1])
        assert tor.counters.packets_forwarded > before

    def test_seed_determinism(self):
        results_a = _rtts(Fabric.single_dc(seed=123))
        results_b = _rtts(Fabric.single_dc(seed=123))
        assert results_a == results_b

    def test_different_seeds_differ(self):
        assert _rtts(Fabric.single_dc(seed=1)) != _rtts(Fabric.single_dc(seed=2))


def _rtts(fabric):
    dc = fabric.topology.dc(0)
    return [fabric.probe(dc.servers[0], dc.servers[30]).rtt_s for _ in range(10)]


class TestBatchProbe:
    def test_shapes_and_masks(self, fabric, dc):
        batch = fabric.batch_probe(dc.servers[0], dc.servers[30], 5000)
        assert batch.n == 5000
        assert batch.rtt_s.shape == (5000,)
        assert batch.success.dtype == bool
        assert batch.successful_rtts().size == batch.success.sum()

    def test_healthy_batch_mostly_succeeds(self, fabric, dc):
        batch = fabric.batch_probe(dc.servers[0], dc.servers[30], 50_000)
        assert batch.success.mean() > 0.999

    def test_attempt_drop_prob_matches_profile(self, fabric, dc):
        a = dc.servers_in_podset(0)[0]
        b = dc.servers_in_podset(1)[0]
        batch = fabric.batch_probe(a, b, 10)
        profile = profile_for(dc.spec.profile_name)
        assert batch.attempt_drop_prob == pytest.approx(
            profile.inter_pod_drop, rel=0.01
        )

    def test_drop_signatures_are_3s_and_9s(self, fabric, dc):
        batch = fabric.batch_probe(dc.servers[0], dc.servers[30], 300_000)
        one_drop = batch.rtt_s[batch.syn_drops == 1]
        if one_drop.size:
            assert (one_drop >= 3.0).all()
            assert (one_drop < 4.0).all()

    def test_batch_falls_back_to_scalar_on_fault(self, fabric, dc):
        a = dc.servers_in_pod(0)[0]
        b = dc.servers_in_pod(0)[1]
        tor = dc.tor_of(a)
        fabric.faults.inject(
            BlackholeType1(switch_id=tor.device_id, fraction=1.0)
        )
        batch = fabric.batch_probe(a, b, 50)
        assert not batch.success.any()
        assert np.isnan(batch.attempt_drop_prob)  # scalar path marker

    def test_batch_with_down_destination(self, fabric, dc):
        victim = dc.servers[2]
        victim.bring_down()
        batch = fabric.batch_probe(dc.servers[0], victim, 20)
        assert not batch.success.any()

    def test_rejects_nonpositive_n(self, fabric, dc):
        with pytest.raises(ValueError):
            fabric.batch_probe(dc.servers[0], dc.servers[1], 0)

    def test_batch_and_scalar_distributions_agree(self, dc):
        """Same models behind both paths: medians must line up."""
        fabric = Fabric.single_dc(TopologySpec(), seed=99)
        dc = fabric.topology.dc(0)
        a, b = dc.servers[0], dc.servers[30]
        scalar = np.array([fabric.probe(a, b).rtt_s for _ in range(800)])
        batch = fabric.batch_probe(a, b, 20_000).successful_rtts()
        assert np.median(scalar) == pytest.approx(np.median(batch), rel=0.15)


class TestFaultsThroughFabric:
    def test_type1_blackhole_kills_pair_deterministically(self, fabric, dc):
        a, b = dc.servers_in_pod(0)[0], dc.servers_in_pod(0)[1]
        tor = dc.tor_of(a)
        fabric.faults.inject(BlackholeType1(switch_id=tor.device_id, fraction=1.0))
        results = [fabric.probe(a, b) for _ in range(5)]
        assert all(r.error == "timeout" for r in results)
        # Every failed probe shows the full retransmission wait.
        assert all(r.rtt_s == pytest.approx(21.0) for r in results)

    def test_type2_blackhole_passes_some_ports(self, fabric, dc):
        a, b = dc.servers_in_pod(0)[0], dc.servers_in_pod(0)[1]
        tor = dc.tor_of(a)
        fabric.faults.inject(BlackholeType2(switch_id=tor.device_id, fraction=0.4))
        outcomes = [fabric.probe(a, b).success for _ in range(60)]
        assert any(outcomes) and not all(outcomes)

    def test_silent_drop_raises_timeout_rate(self, fabric, dc):
        a = dc.servers_in_podset(0)[0]
        b = dc.servers_in_podset(1)[0]
        for spine in dc.spines:
            fabric.faults.inject(
                SilentRandomDrop(switch_id=spine.device_id, drop_prob=0.3)
            )
        results = [fabric.probe(a, b) for _ in range(200)]
        retransmits = sum(1 for r in results if r.syn_drops > 0)
        assert retransmits > 20

    def test_silent_drops_invisible_to_snmp(self, fabric, dc):
        a = dc.servers_in_podset(0)[0]
        b = dc.servers_in_podset(1)[0]
        spine = dc.spines[0]
        fabric.faults.inject(
            SilentRandomDrop(switch_id=spine.device_id, drop_prob=1.0)
        )
        for _ in range(50):
            fabric.probe(a, b)
        assert spine.counters.input_discards == 0
        assert spine.counters.output_discards == 0

    def test_reload_switch_clears_blackhole(self, fabric, dc):
        a, b = dc.servers_in_pod(0)[0], dc.servers_in_pod(0)[1]
        tor = dc.tor_of(a)
        fabric.faults.inject(BlackholeType1(switch_id=tor.device_id, fraction=1.0))
        assert not fabric.probe(a, b).success
        cleared = fabric.reload_switch(tor.device_id)
        assert len(cleared) == 1
        assert fabric.probe(a, b).success

    def test_reload_does_not_clear_silent_drops(self, fabric, dc):
        spine = dc.spines[0]
        fabric.faults.inject(
            SilentRandomDrop(switch_id=spine.device_id, drop_prob=0.01)
        )
        cleared = fabric.reload_switch(spine.device_id)
        assert cleared == []
        assert fabric.faults.faults_on(spine.device_id)

    def test_isolate_switch_removes_from_rotation(self, fabric, dc):
        spine = dc.spines[2]
        fabric.isolate_switch(spine.device_id)
        a = dc.servers_in_podset(0)[0]
        b = dc.servers_in_podset(1)[0]
        for _ in range(100):
            result = fabric.probe(a, b)
            assert spine.device_id not in result.forward_hops

    def test_reload_helpers_reject_servers(self, fabric, dc):
        with pytest.raises(TypeError):
            fabric.reload_switch(dc.servers[0].device_id)
        with pytest.raises(TypeError):
            fabric.isolate_switch(dc.servers[0].device_id)


class TestExpectedAttemptDrop:
    def test_matches_empirical_timeouts(self, dc):
        fabric = Fabric.single_dc(TopologySpec(), seed=5)
        dc = fabric.topology.dc(0)
        a = dc.servers_in_podset(0)[0]
        b = dc.servers_in_podset(1)[0]
        expected = fabric.expected_attempt_drop(a, b)
        batch = fabric.batch_probe(a, b, 2_000_000)
        empirical = (batch.syn_drops >= 1).mean()
        assert empirical == pytest.approx(expected, rel=0.25)


class TestInterDC:
    def test_inter_dc_probe_includes_wan_latency(self):
        multi = MultiDCTopology(
            [
                TopologySpec(name="w", region="us-west"),
                TopologySpec(name="e", region="europe", profile_name="interactive"),
            ]
        )
        fabric = Fabric(multi, seed=3)
        a = multi.dc(0).servers[0]
        b = multi.dc(1).servers[0]
        result = fabric.probe(a, b)
        assert result.success
        assert result.scope == PathScope.INTER_DC
        assert result.rtt_s > multi.wan_rtt[(0, 1)]

    def test_profile_override_mapping(self):
        multi = MultiDCTopology.single(TopologySpec(name="dcx"))
        fabric = Fabric(
            multi, profiles={"dcx": profile_for("interactive")}
        )
        assert fabric.profile_of(0).name == "interactive"
