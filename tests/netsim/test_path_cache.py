"""The generation-stamped path cache: cached must always equal fresh.

The router memoizes paths per ``(src, dst, ecmp_bucket)`` and drops the
cache whenever the topology's ``StateVersion`` moves.  Everything here
checks one contract: :meth:`Router.path` is indistinguishable from
:meth:`Router.uncached_path` no matter what sequence of device flips,
fault changes, and growth events happens in between.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.addressing import (
    EPHEMERAL_PORT_MAX,
    EPHEMERAL_PORT_MIN,
    EphemeralPortAllocator,
    FiveTuple,
)
from repro.netsim.fabric import Fabric
from repro.netsim.faults import FaultInjector, SilentRandomDrop
from repro.netsim.routing import NoRouteError, Router
from repro.netsim.topology import MultiDCTopology, TopologySpec


@pytest.fixture()
def topo():
    return MultiDCTopology.single(
        TopologySpec(n_podsets=2, pods_per_podset=2, servers_per_pod=2, n_spines=4)
    )


@pytest.fixture()
def router(topo):
    return Router(topo)


def _cross_podset_pair(topo):
    dc = topo.dc(0)
    return dc.servers_in_podset(0)[0], dc.servers_in_podset(1)[0]


def _flow(src, dst, src_port=50_000, dst_port=81):
    return FiveTuple(src.ip, src_port, dst.ip, dst_port)


def _same_path(a, b) -> bool:
    return (
        a.scope == b.scope
        and a.hop_ids() == b.hop_ids()
        and a.wan_rtt == b.wan_rtt
    )


class TestCacheMechanics:
    def test_second_lookup_is_a_hit(self, topo, router):
        src, dst = _cross_podset_pair(topo)
        flow = _flow(src, dst)
        first = router.path(src, dst, flow)
        second = router.path(src, dst, flow)
        assert second is first
        assert (router.cache_misses, router.cache_hits) == (1, 1)

    def test_same_bucket_different_port_shares_the_entry(self, topo, router):
        src, dst = _cross_podset_pair(topo)
        ports = range(EPHEMERAL_PORT_MIN, EPHEMERAL_PORT_MIN + 200)
        paths = {id(router.path(src, dst, _flow(src, dst, port))) for port in ports}
        # Distinct ports land in a handful of buckets, each cached once.
        assert router.cached_paths == len(paths)
        assert router.cache_misses == len(paths)
        assert router.cache_hits == 200 - len(paths)

    def test_bucket_count_is_bounded_by_tier_sizes(self, topo, router):
        src, dst = _cross_podset_pair(topo)
        spec = topo.dc(0).spec
        buckets = {
            router.ecmp_bucket(src, dst, _flow(src, dst, port))
            for port in range(EPHEMERAL_PORT_MIN, EPHEMERAL_PORT_MAX + 1)
        }
        cap = spec.leaves_per_podset * spec.n_spines * spec.leaves_per_podset
        assert 1 <= len(buckets) <= cap

    def test_port_wraparound_revisits_the_same_path_set(self, topo, router):
        """Satellite: after 64k allocations the sweep repeats exactly.

        The allocator's range is finite, so the ECMP bucket sweep is too:
        the second full cycle of ports must reproduce the first cycle's
        ports, buckets, and cached-path set with zero new cache misses.
        """
        src, dst = _cross_podset_pair(topo)
        allocator = EphemeralPortAllocator()
        n_ports = EPHEMERAL_PORT_MAX - EPHEMERAL_PORT_MIN + 1
        first_cycle = [allocator.allocate() for _ in range(n_ports)]
        second_cycle = [allocator.allocate() for _ in range(n_ports)]
        assert second_cycle == first_cycle

        sweep = first_cycle[::257]  # every 257th port keeps the test fast
        first_paths = [
            router.path(src, dst, _flow(src, dst, port)) for port in sweep
        ]
        misses = router.cache_misses
        second_paths = [
            router.path(src, dst, _flow(src, dst, port)) for port in sweep
        ]
        assert router.cache_misses == misses
        assert all(a is b for a, b in zip(first_paths, second_paths))

    def test_invalidate_clears_everything(self, topo, router):
        src, dst = _cross_podset_pair(topo)
        router.path(src, dst, _flow(src, dst))
        router.invalidate()
        assert router.cached_paths == 0


class TestGenerationInvalidation:
    def test_device_transition_drops_the_cache(self, topo, router):
        src, dst = _cross_podset_pair(topo)
        flow = _flow(src, dst)
        stale = router.path(src, dst, flow)
        spine = stale.hops[2]
        spine.bring_down()
        fresh = router.path(src, dst, flow)
        assert spine.device_id not in fresh.hop_ids()
        assert _same_path(fresh, router.uncached_path(src, dst, flow))

    def test_down_up_flap_between_rounds(self, topo, router):
        """Satellite edge: a flap must invalidate twice, not net out to zero."""
        src, dst = _cross_podset_pair(topo)
        flow = _flow(src, dst)
        before = router.path(src, dst, flow)
        spine = before.hops[2]
        spine.bring_down()
        while_down = router.path(src, dst, flow)
        assert spine.device_id not in while_down.hop_ids()
        spine.bring_up()
        after = router.path(src, dst, flow)
        assert _same_path(after, before)
        assert _same_path(after, router.uncached_path(src, dst, flow))

    def test_fault_changes_bump_without_changing_routes(self, topo, router):
        src, dst = _cross_podset_pair(topo)
        flow = _flow(src, dst)
        injector = FaultInjector(state_version=topo.state_version)
        before = router.path(src, dst, flow)
        version = topo.state_version.value
        fault = injector.inject(SilentRandomDrop(switch_id=before.hops[0].device_id))
        assert topo.state_version.value == version + 1
        misses = router.cache_misses
        assert _same_path(router.path(src, dst, flow), before)
        assert router.cache_misses == misses + 1  # the bump forced a rebuild
        injector.clear(fault)
        assert topo.state_version.value == version + 2

    def test_add_podset_during_a_live_run(self, topo, router):
        """Satellite edge: growth invalidates, and new servers route."""
        src, dst = _cross_podset_pair(topo)
        router.path(src, dst, _flow(src, dst))
        new_servers = topo.dc(0).add_podset()
        newcomer = new_servers[0]
        flow = _flow(src, newcomer)
        grown = router.path(src, newcomer, flow)
        assert _same_path(grown, router.uncached_path(src, newcomer, flow))
        # The old pair still matches fresh computation post-growth.
        old_flow = _flow(src, dst)
        assert _same_path(
            router.path(src, dst, old_flow), router.uncached_path(src, dst, old_flow)
        )

    def test_reload_bumps_even_up_to_up(self, topo, router):
        src, dst = _cross_podset_pair(topo)
        router.path(src, dst, _flow(src, dst))
        version = topo.state_version.value
        topo.dc(0).spines[0].reload()
        assert topo.state_version.value == version + 1


class TestFastPathInvalidation:
    """Satellite edges at the fabric level: no stale-route probe may
    succeed through a withdrawn switch, whichever engine carried it."""

    def _fabric(self):
        return Fabric.single_dc(
            TopologySpec(n_podsets=2, pods_per_podset=2, servers_per_pod=2, n_spines=4),
            seed=11,
        )

    def test_fault_injected_mid_round_forces_scalar(self):
        fabric = self._fabric()
        dc = fabric.topology.dc(0)
        src = dc.servers_in_podset(0)[0]
        entries = [(s.device_id, 81, 0) for s in dc.servers_in_podset(1)]
        fabric.probe_many(src, entries)  # warm the pair cache
        for spine in dc.spines:
            fabric.faults.inject(
                SilentRandomDrop(switch_id=spine.device_id, drop_prob=1.0)
            )
        results = fabric.probe_many(src, entries)
        # Every cross-podset path crosses a spine; a stale fast-path entry
        # would sail through the blackhole and succeed.
        assert all(not r.success for r in results)

    def test_withdrawn_switch_never_appears_in_a_probe(self):
        fabric = self._fabric()
        dc = fabric.topology.dc(0)
        src = dc.servers_in_podset(0)[0]
        entries = [(s.device_id, 81, 0) for s in dc.servers_in_podset(1)]
        fabric.probe_many(src, entries)  # warm the pair cache
        withdrawn = dc.spines[0]
        withdrawn.bring_down()
        for t in (100.0, 200.0):
            for result in fabric.probe_many(src, entries, t=t):
                assert withdrawn.device_id not in result.forward_hops

    def test_growth_during_a_live_run_reaches_new_servers(self):
        fabric = self._fabric()
        dc = fabric.topology.dc(0)
        src = dc.servers_in_podset(0)[0]
        entries = [(s.device_id, 81, 0) for s in dc.servers_in_podset(1)]
        fabric.probe_many(src, entries)
        new_servers = dc.add_podset()
        grown_entries = entries + [(s.device_id, 81, 0) for s in new_servers[:4]]
        results = fabric.probe_many(src, grown_entries, t=100.0)
        assert all(r.success for r in results)


# Operations the property test interleaves with path queries.  Each op
# bumps (or should bump) the state version; correctness means cached and
# fresh computation agree after every single one.
_OPS = ("down", "up", "flap", "fault", "clear", "grow", "reload", "noop")


class TestCachedEqualsFreshProperty:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(_OPS), st.integers(0, 10_000)),
            min_size=1,
            max_size=10,
        ),
        probes=st.lists(
            st.tuples(
                st.integers(0, 10_000),
                st.integers(0, 10_000),
                st.integers(EPHEMERAL_PORT_MIN, EPHEMERAL_PORT_MAX),
            ),
            min_size=1,
            max_size=4,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_cached_path_equals_fresh_path(self, ops, probes):
        """Across random fault/flap/growth sequences, path == uncached_path."""
        topo = MultiDCTopology.single(
            TopologySpec(
                n_podsets=2, pods_per_podset=2, servers_per_pod=2, n_spines=3
            )
        )
        router = Router(topo)
        injector = FaultInjector(state_version=topo.state_version)
        active_faults: list = []
        dc = topo.dc(0)

        def switch_pool():
            pool = list(dc.tors) + list(dc.spines)
            for podset in range(dc.spec.n_podsets):
                pool.extend(dc.leaves_of(podset))
            return pool

        def check_probes():
            servers = dc.servers
            for i, j, port in probes:
                src = servers[i % len(servers)]
                dst = servers[j % len(servers)]
                flow = FiveTuple(src.ip, port, dst.ip, 81)
                try:
                    cached = router.path(src, dst, flow)
                except NoRouteError:
                    with pytest.raises(NoRouteError):
                        router.uncached_path(src, dst, flow)
                    continue
                assert _same_path(cached, router.uncached_path(src, dst, flow))

        check_probes()
        for op, pick in ops:
            pool = switch_pool()
            switch = pool[pick % len(pool)]
            if op == "down":
                switch.bring_down()
            elif op == "up":
                switch.bring_up()
            elif op == "flap":
                switch.bring_down()
                switch.bring_up()
            elif op == "fault":
                active_faults.append(
                    injector.inject(SilentRandomDrop(switch_id=switch.device_id))
                )
            elif op == "clear" and active_faults:
                injector.clear(active_faults.pop(pick % len(active_faults)))
            elif op == "grow" and dc.spec.n_podsets < 4:
                dc.add_podset()
            elif op == "reload":
                switch.reload()
            check_probes()
