"""The closed-form class-round engine against its contracts.

Three layers:

* **Exactness** — the path-free class facts (hop count, WAN RTT, attempt
  drop probability, fault envelope) must be *bit-identical* to what the
  per-pair path machinery computes; the whole engine rests on that.
* **Partition** — ``build_class_plan`` must refuse exactly the pairs the
  per-pair fast path would refuse (payload, down endpoints, envelope ∩
  faults), plus any pair whose route would not resolve.
* **Accounting** — probe-conservation ledger, observer notifications, SNMP
  increments and the deferred-ledger mode must all agree with the
  immediate path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim.fabric import (
    ClassLedger,
    Fabric,
    merge_class_plans,
)
from repro.netsim.faults import CongestionFault, SilentRandomDrop
from repro.netsim.routing import SCOPE_HOP_KINDS, PathScope, classify_scope
from repro.netsim.topology import MultiDCTopology, TopologySpec

_SPEC = TopologySpec(n_podsets=2, pods_per_podset=2, servers_per_pod=4, n_spines=4)


def _fabric(seed=7):
    return Fabric.single_dc(_SPEC, seed=seed)


def _multi_dc_fabric(seed=7):
    topology = MultiDCTopology(
        [
            TopologySpec(
                name="dc-e", region="us-east", n_podsets=2,
                pods_per_podset=2, servers_per_pod=2,
            ),
            TopologySpec(
                name="dc-w", region="us-west", n_podsets=2,
                pods_per_podset=2, servers_per_pod=2,
            ),
        ]
    )
    return Fabric(topology, seed=seed)


def _entries_for(fabric, src, peers):
    return [(peer.device_id, 81, 0) for peer in peers]


class TestClassFacts:
    def test_p_attempt_bit_identical_to_path_based(self):
        """For every scope, the kind-sequence drop probability must equal
        the representative-path computation float-for-float."""
        fabric = _multi_dc_fabric()
        dc0 = fabric.topology.dc(0)
        src = dc0.servers_in_podset(0)[0]
        peers = {
            PathScope.INTRA_POD: dc0.servers_in_podset(0)[1],
            PathScope.INTRA_PODSET: dc0.servers_in_podset(0)[-1],
            PathScope.INTRA_DC: dc0.servers_in_podset(1)[0],
            PathScope.INTER_DC: fabric.topology.dc(1).servers_in_podset(0)[0],
        }
        for scope, dst in peers.items():
            assert classify_scope(fabric.topology, src, dst) is scope
            facts = fabric._class_facts(src, dst)
            assert facts.scope is scope
            assert facts.n_hops == len(SCOPE_HOP_KINDS[scope])
            assert facts.p_attempt == fabric.expected_attempt_drop(src, dst)

    def test_wan_rtt_only_inter_dc(self):
        fabric = _multi_dc_fabric()
        src = fabric.topology.dc(0).servers_in_podset(0)[0]
        local = fabric.topology.dc(0).servers_in_podset(1)[0]
        remote = fabric.topology.dc(1).servers_in_podset(0)[0]
        assert fabric._class_facts(src, local).wan_rtt == 0.0
        facts = fabric._class_facts(src, remote)
        # A probe pays both WAN directions; the facts keep each leg too.
        assert facts.wan_rtt == fabric.topology.wan_pair_rtt(0, 1)
        assert facts.wan_fwd == fabric.topology.wan_rtt[(0, 1)]
        assert facts.wan_rev == fabric.topology.wan_rtt[(1, 0)]

    def test_envelope_matches_pair_envelope(self):
        fabric = _fabric()
        dc = fabric.topology.dc(0)
        src = dc.servers_in_podset(0)[0]
        dst = dc.servers_in_podset(1)[0]
        facts = fabric._class_facts(src, dst)
        scope = classify_scope(fabric.topology, src, dst)
        assert facts.envelope == fabric._pair_envelope(src, dst, scope)

    def test_cache_invalidates_on_state_version_bump(self):
        fabric = _fabric()
        dc = fabric.topology.dc(0)
        src = dc.servers_in_podset(0)[0]
        dst = dc.servers_in_podset(1)[0]
        fabric._class_facts(src, dst)
        assert fabric._class_facts_cache
        dc.spines[0].bring_down()
        fabric._class_facts(src, dst)  # repopulates under the new version
        assert fabric._class_facts_version == fabric.state_version


class TestPlanPartition:
    def test_healthy_round_fully_classed(self):
        fabric = _fabric()
        dc = fabric.topology.dc(0)
        src = dc.servers_in_podset(0)[0]
        peers = [s for s in dc.servers if s is not src][:12]
        plan = fabric.build_class_plan(src, _entries_for(fabric, src, peers))
        assert plan.passthrough == []
        assert plan.n_class_probes == 12

    def test_payload_and_self_and_down_degrade(self):
        fabric = _fabric()
        dc = fabric.topology.dc(0)
        src = dc.servers_in_podset(0)[0]
        up_peer = dc.servers_in_podset(1)[0]
        down_peer = dc.servers_in_podset(1)[1]
        down_peer.bring_down()
        entries = [
            (up_peer.device_id, 81, 1000),  # payload → per-probe fidelity
            (src.device_id, 81, 0),  # self-probe → scalar's error path
            (down_peer.device_id, 81, 0),  # down dst → scalar timeout
            (dc.servers_in_podset(0)[1].device_id, 81, 0),  # healthy
        ]
        plan = fabric.build_class_plan(src, entries)
        assert plan.passthrough == [0, 1, 2]
        assert plan.n_class_probes == 1

    def test_fault_on_envelope_degrades_class(self):
        fabric = _fabric()
        dc = fabric.topology.dc(0)
        src = dc.servers_in_podset(0)[0]
        same_pod = dc.servers_in_podset(0)[1]
        cross = dc.servers_in_podset(1)[0]
        entries = _entries_for(fabric, src, [same_pod, cross])
        fabric.faults.inject(
            SilentRandomDrop(switch_id=dc.spines[0].device_id, drop_prob=0.2)
        )
        plan = fabric.build_class_plan(src, entries)
        # The spine is on the cross-podset envelope only.
        assert plan.passthrough == [1]
        assert plan.n_class_probes == 1
        fabric.faults.clear_all()
        plan = fabric.build_class_plan(src, entries)
        assert plan.passthrough == []

    def test_groups_key_on_purpose_and_scope(self):
        fabric = _fabric()
        dc = fabric.topology.dc(0)
        src = dc.servers_in_podset(0)[0]
        same_pod = dc.servers_in_podset(0)[1]
        cross = dc.servers_in_podset(1)[0]
        entries = _entries_for(fabric, src, [same_pod, cross])
        tags = [("intra-pod", "high"), ("tor-level", "high")]
        plan = fabric.build_class_plan(src, entries, tags)
        keys = {(g.purpose, g.scope) for g in plan.groups}
        assert keys == {
            ("intra-pod", PathScope.INTRA_POD),
            ("tor-level", PathScope.INTRA_DC),
        }


class TestRunClassPlan:
    def test_stale_plan_raises(self):
        fabric = _fabric()
        dc = fabric.topology.dc(0)
        src = dc.servers_in_podset(0)[0]
        plan = fabric.build_class_plan(
            src, _entries_for(fabric, src, dc.servers_in_podset(1)[:4])
        )
        dc.spines[0].bring_down()
        with pytest.raises(ValueError, match="stale"):
            fabric.run_class_plan(plan)

    def test_probe_conservation_and_observers(self):
        fabric = _fabric()
        dc = fabric.topology.dc(0)
        src = dc.servers_in_podset(0)[0]
        observed = []
        fabric.probe_observers.append(lambda *args: observed.append(args))
        before = fabric.probes_carried
        plan = fabric.build_class_plan(
            src, _entries_for(fabric, src, dc.servers_in_podset(1)[:6])
        )
        fabric.run_class_plan(plan)
        assert fabric.probes_carried - before == 6
        assert len(observed) == 6
        assert {(o[0], o[1]) for o in observed} == {
            (src.device_id, peer.device_id)
            for peer in dc.servers_in_podset(1)[:6]
        }

    def test_outcome_counts_sum_to_members(self):
        fabric = _fabric()
        dc = fabric.topology.dc(0)
        src = dc.servers_in_podset(0)[0]
        peers = [s for s in dc.servers if s is not src]
        plan = fabric.build_class_plan(src, _entries_for(fabric, src, peers))
        outcomes = fabric.run_class_plan(plan)
        assert sum(o.n for o in outcomes) == len(peers)
        for outcome in outcomes:
            assert outcome.success + outcome.failed == outcome.n
            assert len(outcome.rtt_s) == outcome.success

    def test_snmp_increments_match_fast_path_totals(self):
        """Every class probe charges one packet per forward hop, like the
        per-pair engines."""
        fabric = _fabric()
        dc = fabric.topology.dc(0)
        src = dc.servers_in_podset(0)[0]
        cross = dc.servers_in_podset(1)[:4]
        before = sum(s.counters.packets_forwarded for s in dc.all_switches())
        plan = fabric.build_class_plan(src, _entries_for(fabric, src, cross))
        fabric.run_class_plan(plan)
        after = sum(s.counters.packets_forwarded for s in dc.all_switches())
        # INTRA_DC forward path: ToR, Leaf, Spine, Leaf, ToR = 5 hops/probe.
        assert after - before == 5 * len(cross)

    def test_class_rtts_match_batch_probe_distribution(self):
        """Class-level RTT samples come from the same analytic model as
        ``batch_probe`` — medians within a few percent over a big draw."""
        fabric_a = _fabric(seed=11)
        fabric_b = _fabric(seed=11)
        dc = fabric_a.topology.dc(0)
        src = dc.servers_in_podset(0)[0]
        dst = dc.servers_in_podset(1)[0]
        n = 4000
        batch = fabric_b.batch_probe(
            src.device_id, dst.device_id, n=n
        )
        plan = fabric_a.build_class_plan(
            src, [(dst.device_id, 81, 0)] * n
        )
        outcomes = fabric_a.run_class_plan(plan)
        class_rtts = np.concatenate([o.rtt_s for o in outcomes])
        batch_ok = batch.rtt_s[batch.success]
        assert np.isclose(
            np.median(class_rtts), np.median(batch_ok), rtol=0.05
        )
        assert np.isclose(
            np.percentile(class_rtts, 99), np.percentile(batch_ok, 99), rtol=0.10
        )


class TestLedgerAndMerge:
    def test_merge_class_plans_concatenates_groups(self):
        fabric = _fabric()
        dc = fabric.topology.dc(0)
        src_a = dc.servers_in_podset(0)[0]
        src_b = dc.servers_in_podset(0)[1]
        peers = dc.servers_in_podset(1)[:4]
        plan_a = fabric.build_class_plan(src_a, _entries_for(fabric, src_a, peers))
        plan_b = fabric.build_class_plan(src_b, _entries_for(fabric, src_b, peers))
        merged = merge_class_plans([plan_a, plan_b])
        assert merged.n_class_probes == 8
        # Same (purpose, scope, p) key ⇒ one group with both sources' pairs.
        assert len(merged.groups) == 1
        assert merged.groups[0].n == 8

    def test_merge_rejects_mixed_generations(self):
        fabric = _fabric()
        dc = fabric.topology.dc(0)
        src = dc.servers_in_podset(0)[0]
        peers = dc.servers_in_podset(1)[:2]
        plan_a = fabric.build_class_plan(src, _entries_for(fabric, src, peers))
        dc.spines[0].bring_down()
        plan_b = fabric.build_class_plan(src, _entries_for(fabric, src, peers))
        with pytest.raises(ValueError, match="generation"):
            merge_class_plans([plan_a, plan_b])

    def test_deferred_ledger_equals_immediate(self):
        fabric_now = _fabric(seed=3)
        fabric_def = _fabric(seed=3)
        for fabric in (fabric_now, fabric_def):
            dc = fabric.topology.dc(0)
            src = dc.servers_in_podset(0)[0]
            peers = [s for s in dc.servers if s is not src]
            plan = fabric.build_class_plan(src, _entries_for(fabric, src, peers))
            rng = np.random.default_rng(99)
            if fabric is fabric_now:
                fabric.run_class_plan(plan, rng=rng)
            else:
                ledger = ClassLedger()
                fabric.run_class_plan(plan, rng=rng, ledger=ledger)
                fabric.apply_class_ledger(ledger)
        assert fabric_now.probes_carried == fabric_def.probes_carried
        counts_now = [
            s.counters.packets_forwarded
            for s in fabric_now.topology.dc(0).all_switches()
        ]
        counts_def = [
            s.counters.packets_forwarded
            for s in fabric_def.topology.dc(0).all_switches()
        ]
        assert counts_now == counts_def

    def test_ledger_refused_with_observers_attached(self):
        fabric = _fabric()
        dc = fabric.topology.dc(0)
        src = dc.servers_in_podset(0)[0]
        plan = fabric.build_class_plan(
            src, _entries_for(fabric, src, dc.servers_in_podset(1)[:2])
        )
        fabric.probe_observers.append(lambda *args: None)
        with pytest.raises(RuntimeError, match="observers"):
            fabric.run_class_plan(plan, ledger=ClassLedger())

    def test_congestion_latency_fault_degrades_not_distorts(self):
        """A latency-only fault on the envelope must push pairs to the
        per-pair engines (which traverse the fault), never stay classed."""
        fabric = _fabric()
        dc = fabric.topology.dc(0)
        src = dc.servers_in_podset(0)[0]
        cross = dc.servers_in_podset(1)[:4]
        fabric.faults.inject(
            CongestionFault(
                switch_id=dc.spines[0].device_id,
                drop_prob=0.0,
                extra_queue_s=400e-6,
            )
        )
        plan = fabric.build_class_plan(src, _entries_for(fabric, src, cross))
        assert plan.groups == []
        assert plan.passthrough == [0, 1, 2, 3]
