"""Tests for the Clos topology builder."""

import pytest

from repro.netsim.devices import DeviceKind, Server
from repro.netsim.topology import (
    MEDIUM_SPEC,
    ClosTopology,
    MultiDCTopology,
    TopologySpec,
)


class TestTopologySpec:
    def test_defaults_are_consistent(self):
        spec = TopologySpec()
        assert spec.n_pods == spec.n_podsets * spec.pods_per_podset
        assert spec.n_servers == spec.n_pods * spec.servers_per_pod

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ValueError):
            TopologySpec(n_podsets=0)
        with pytest.raises(ValueError):
            TopologySpec(servers_per_pod=0)

    def test_rejects_unknown_region(self):
        with pytest.raises(ValueError):
            TopologySpec(region="atlantis")


class TestClosTopology:
    @pytest.fixture(scope="class")
    def topo(self):
        return ClosTopology(TopologySpec())

    def test_device_counts(self, topo):
        spec = topo.spec
        assert len(topo.servers) == spec.n_servers
        assert len(topo.tors) == spec.n_pods
        assert len(topo.spines) == spec.n_spines
        assert sum(len(leaves) for leaves in topo.leaves) == (
            spec.n_podsets * spec.leaves_per_podset
        )

    def test_server_ips_unique(self, topo):
        ips = {server.ip for server in topo.servers}
        assert len(ips) == len(topo.servers)

    def test_server_ip_lookup(self, topo):
        server = topo.servers[17]
        assert topo.server_by_ip(server.ip) is server

    def test_device_lookup_by_id(self, topo):
        server = topo.servers[0]
        assert topo.device(server.device_id) is server

    def test_unknown_device_raises(self, topo):
        with pytest.raises(KeyError):
            topo.device("dc0/nothing")

    def test_tor_of_server(self, topo):
        server = topo.servers[0]
        tor = topo.tor_of(server)
        assert tor.kind == DeviceKind.TOR
        assert tor.pod_index == server.pod_index

    def test_servers_in_pod(self, topo):
        pod_servers = topo.servers_in_pod(2)
        assert len(pod_servers) == topo.spec.servers_per_pod
        assert all(server.pod_index == 2 for server in pod_servers)

    def test_servers_in_podset(self, topo):
        podset_servers = topo.servers_in_podset(1)
        expected = topo.spec.pods_per_podset * topo.spec.servers_per_pod
        assert len(podset_servers) == expected
        assert all(server.podset_index == 1 for server in podset_servers)

    def test_host_index_within_pod(self, topo):
        for server in topo.servers_in_pod(0):
            assert 0 <= server.host_index < topo.spec.servers_per_pod

    def test_podset_of_pod(self, topo):
        assert topo.podset_of_pod(0) == 0
        assert topo.podset_of_pod(topo.spec.pods_per_podset) == 1

    def test_all_switches_cover_every_tier(self, topo):
        kinds = {switch.kind for switch in topo.all_switches()}
        assert kinds == {
            DeviceKind.TOR,
            DeviceKind.LEAF,
            DeviceKind.SPINE,
            DeviceKind.BORDER,
        }

    def test_medium_spec_scales(self):
        topo = ClosTopology(MEDIUM_SPEC)
        assert len(topo.servers) == 800


class TestMultiDCTopology:
    @pytest.fixture(scope="class")
    def multi(self):
        return MultiDCTopology(
            [
                TopologySpec(name="dc-a", region="us-west"),
                TopologySpec(name="dc-b", region="europe"),
                TopologySpec(name="dc-c", region="asia"),
            ]
        )

    def test_requires_at_least_one_dc(self):
        with pytest.raises(ValueError):
            MultiDCTopology([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            MultiDCTopology([TopologySpec(name="x"), TopologySpec(name="x")])

    def test_dc_lookup_by_name_and_index(self, multi):
        assert multi.dc("dc-b") is multi.dc(1)

    def test_unknown_dc_raises(self, multi):
        with pytest.raises(KeyError):
            multi.dc("dc-z")

    def test_wan_rtt_symmetric_and_positive(self, multi):
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert multi.wan_rtt[(i, j)] == multi.wan_rtt[(j, i)]
                    assert multi.wan_rtt[(i, j)] > 0

    def test_wan_rtt_tracks_distance(self, multi):
        # us-west <-> europe is shorter than us-west <-> asia.
        assert multi.wan_rtt[(0, 1)] < multi.wan_rtt[(0, 2)]

    def test_server_ips_unique_across_dcs(self, multi):
        ips = {server.ip for server in multi.all_servers()}
        assert len(ips) == multi.n_servers

    def test_device_routing_by_id_prefix(self, multi):
        server = multi.dc("dc-c").servers[5]
        assert multi.device(server.device_id) is server
        assert multi.server(server.device_id) is server

    def test_server_accessor_rejects_switches(self, multi):
        tor = multi.dc("dc-a").tors[0]
        with pytest.raises(TypeError):
            multi.server(tor.device_id)

    def test_single_factory(self):
        multi = MultiDCTopology.single()
        assert len(multi.dcs) == 1
        assert isinstance(multi.dcs[0].servers[0], Server)
