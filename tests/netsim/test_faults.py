"""Tests for fault injection: black-holes, silent drops, outages."""

import pytest

from repro.netsim.addressing import FiveTuple, IPv4Address
from repro.netsim.devices import DeviceKind, Switch
from repro.netsim.faults import (
    BlackholeType1,
    BlackholeType2,
    CongestionFault,
    FaultInjector,
    FcsErrorFault,
    SilentRandomDrop,
    podset_down,
    podset_up,
)
from repro.netsim.topology import MultiDCTopology, TopologySpec


def _switch(device_id="dc0/spine0"):
    return Switch(device_id=device_id, kind=DeviceKind.SPINE, dc_index=0)


def _flow(src_host=1, dst_host=2, src_port=50_000, dst_port=81):
    return FiveTuple(
        IPv4Address.from_octets(10, 0, 0, src_host),
        src_port,
        IPv4Address.from_octets(10, 0, 0, dst_host),
        dst_port,
    )


class TestBlackholeType1:
    def test_deterministic_per_ip_pair(self):
        fault = BlackholeType1(switch_id="s", fraction=0.3)
        flow = _flow()
        verdicts = {
            fault.evaluate(_flow(src_port=p), 40, 0.5).dropped
            for p in range(50_000, 50_020)
        }
        # Ports don't matter for type 1: all probes of the pair agree.
        assert len(verdicts) == 1
        assert fault.evaluate(flow, 40, 0.0).dropped == fault.evaluate(
            flow, 40, 0.999
        ).dropped

    def test_fraction_controls_affected_pairs(self):
        fault = BlackholeType1(switch_id="s", fraction=0.25)
        affected = sum(
            fault.matches(
                IPv4Address.from_octets(10, 0, a, 1),
                IPv4Address.from_octets(10, 0, b, 2),
            )
            for a in range(40)
            for b in range(40)
        )
        assert 0.15 < affected / 1600 < 0.35

    def test_drop_is_silent(self):
        fault = BlackholeType1(switch_id="s", fraction=1.0)
        verdict = fault.evaluate(_flow(), 40, 0.5)
        assert verdict.dropped and verdict.silent

    def test_cleared_by_reload_flag(self):
        assert BlackholeType1(switch_id="s").cleared_by_reload is True


class TestBlackholeType2:
    def test_sensitive_to_source_port(self):
        fault = BlackholeType2(switch_id="s", fraction=0.3)
        outcomes = {
            fault.matches(_flow(src_port=p)) for p in range(50_000, 50_100)
        }
        assert outcomes == {True, False}  # some ports blocked, some fine

    def test_deterministic_per_five_tuple(self):
        fault = BlackholeType2(switch_id="s", fraction=0.5)
        flow = _flow(src_port=54_321)
        assert all(
            fault.evaluate(flow, 40, u).dropped == fault.evaluate(flow, 40, 0.0).dropped
            for u in (0.1, 0.5, 0.9)
        )

    def test_distinct_faults_corrupt_distinct_patterns(self):
        a = BlackholeType2(switch_id="s", fraction=0.3)
        b = BlackholeType2(switch_id="s", fraction=0.3)
        flows = [_flow(src_port=p) for p in range(50_000, 50_200)]
        assert [a.matches(f) for f in flows] != [b.matches(f) for f in flows]


class TestSilentRandomDrop:
    def test_drop_probability_honoured(self):
        fault = SilentRandomDrop(switch_id="s", drop_prob=0.25)
        drops = sum(
            fault.evaluate(_flow(), 40, u / 1000).dropped for u in range(1000)
        )
        assert drops == 250  # uniform sweep: exactly the quantile

    def test_silent_and_not_reload_fixable(self):
        fault = SilentRandomDrop(switch_id="s", drop_prob=1.0)
        assert fault.evaluate(_flow(), 40, 0.0).silent
        assert fault.cleared_by_reload is False


class TestFcsErrorFault:
    def test_drop_prob_grows_with_packet_size(self):
        fault = FcsErrorFault(switch_id="s", bit_error_rate=1e-6)
        assert fault.drop_prob(1400) > fault.drop_prob(64)

    def test_visible_counter(self):
        fault = FcsErrorFault(switch_id="s", bit_error_rate=1.0)
        verdict = fault.evaluate(_flow(), 1000, 0.0)
        assert verdict.dropped and not verdict.silent
        assert verdict.counter == "fcs_errors"


class TestCongestionFault:
    def test_adds_latency_when_not_dropping(self):
        fault = CongestionFault(switch_id="s", drop_prob=0.0, extra_queue_s=1e-3)
        verdict = fault.evaluate(_flow(), 40, 0.9)
        assert not verdict.dropped
        assert verdict.extra_latency_s == 1e-3

    def test_visible_discard_counter(self):
        fault = CongestionFault(switch_id="s", drop_prob=1.0)
        verdict = fault.evaluate(_flow(), 40, 0.0)
        assert verdict.counter == "output_discards"


class TestFaultInjector:
    def test_inject_and_clear(self):
        injector = FaultInjector()
        fault = injector.inject(SilentRandomDrop(switch_id="s1", drop_prob=0.1))
        assert injector.faults_on("s1") == [fault]
        injector.clear(fault)
        assert injector.faults_on("s1") == []
        assert not injector.has_faults()

    def test_clear_by_id_and_idempotent(self):
        injector = FaultInjector()
        fault = injector.inject(SilentRandomDrop(switch_id="s1"))
        injector.clear(fault.fault_id)
        injector.clear(fault.fault_id)  # no-op, no error
        assert injector.active_faults() == []

    def test_reload_clears_only_blackholes(self):
        injector = FaultInjector()
        switch = _switch()
        blackhole = injector.inject(
            BlackholeType1(switch_id=switch.device_id, fraction=0.1)
        )
        silent = injector.inject(
            SilentRandomDrop(switch_id=switch.device_id, drop_prob=0.01)
        )
        cleared = injector.on_reload(switch)
        assert cleared == [blackhole]
        assert injector.faults_on(switch.device_id) == [silent]

    def test_silent_drop_updates_hidden_counter_only(self):
        injector = FaultInjector()
        switch = _switch()
        injector.inject(SilentRandomDrop(switch_id=switch.device_id, drop_prob=1.0))
        verdict = injector.evaluate_hop(switch, _flow(), 40, 0.0)
        assert verdict.dropped
        assert switch.counters.silent_drops == 1
        # SNMP shows nothing wrong — the defining property of §5.
        assert all(v == 0 for v in switch.counters.visible().values())

    def test_visible_drop_updates_snmp(self):
        injector = FaultInjector()
        switch = _switch()
        injector.inject(FcsErrorFault(switch_id=switch.device_id, bit_error_rate=1.0))
        injector.evaluate_hop(switch, _flow(), 1500, 0.0)
        assert switch.counters.visible()["fcs_errors"] == 1

    def test_no_faults_is_clean_verdict(self):
        injector = FaultInjector()
        verdict = injector.evaluate_hop(_switch(), _flow(), 40, 0.0)
        assert not verdict.dropped
        assert verdict.extra_latency_s == 0.0

    def test_latency_penalties_accumulate(self):
        injector = FaultInjector()
        switch = _switch()
        injector.inject(
            CongestionFault(switch_id=switch.device_id, drop_prob=0.0, extra_queue_s=1e-3)
        )
        injector.inject(
            CongestionFault(switch_id=switch.device_id, drop_prob=0.0, extra_queue_s=2e-3)
        )
        verdict = injector.evaluate_hop(switch, _flow(), 40, 0.99)
        assert verdict.extra_latency_s == pytest.approx(3e-3)

    def test_clear_all(self):
        injector = FaultInjector()
        injector.inject(SilentRandomDrop(switch_id="a"))
        injector.inject(SilentRandomDrop(switch_id="b"))
        injector.clear_all()
        assert not injector.has_faults()


class TestPodsetOutage:
    def test_podset_down_and_up_roundtrip(self):
        multi = MultiDCTopology.single(TopologySpec())
        dc = multi.dc(0)
        touched = podset_down(multi, 0, 1)
        assert touched  # servers + tors + leaves
        assert all(not s.is_up for s in dc.servers_in_podset(1))
        assert all(s.is_up for s in dc.servers_in_podset(0))
        assert all(not leaf.is_up for leaf in dc.leaves_of(1))
        restored = podset_up(multi, 0, 1)
        assert sorted(restored) == sorted(touched)
        assert all(s.is_up for s in dc.servers_in_podset(1))

    def test_unknown_podset_rejected(self):
        multi = MultiDCTopology.single(TopologySpec())
        with pytest.raises(ValueError):
            podset_down(multi, 0, 99)
