"""Tests for IPv4 addressing, five-tuples and port allocation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.addressing import (
    EPHEMERAL_PORT_MAX,
    EPHEMERAL_PORT_MIN,
    PROTO_TCP,
    PROTO_UDP,
    EphemeralPortAllocator,
    FiveTuple,
    IPv4Address,
)


class TestIPv4Address:
    def test_from_octets(self):
        ip = IPv4Address.from_octets(10, 1, 2, 3)
        assert str(ip) == "10.1.2.3"

    def test_parse(self):
        assert IPv4Address.parse("192.168.0.1").octets == (192, 168, 0, 1)

    def test_parse_rejects_garbage(self):
        for bad in ("10.0.0", "10.0.0.0.0", "a.b.c.d", "256.0.0.1", ""):
            with pytest.raises(ValueError):
                IPv4Address.parse(bad)

    def test_value_bounds(self):
        with pytest.raises(ValueError):
            IPv4Address(-1)
        with pytest.raises(ValueError):
            IPv4Address(2**32)
        assert IPv4Address(0xFFFFFFFF).octets == (255, 255, 255, 255)

    def test_octet_bounds(self):
        with pytest.raises(ValueError):
            IPv4Address.from_octets(10, 0, 0, 300)

    def test_hashable_and_ordered(self):
        a = IPv4Address.from_octets(10, 0, 0, 1)
        b = IPv4Address.from_octets(10, 0, 0, 2)
        assert a < b
        assert len({a, b, IPv4Address.from_octets(10, 0, 0, 1)}) == 2

    def test_int_conversion(self):
        assert int(IPv4Address.from_octets(0, 0, 1, 0)) == 256

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_str_parse_roundtrip(self, value):
        ip = IPv4Address(value)
        assert IPv4Address.parse(str(ip)) == ip


def _tuple(src_port=50_000, dst_port=80, proto=PROTO_TCP):
    return FiveTuple(
        src_ip=IPv4Address.parse("10.0.0.1"),
        src_port=src_port,
        dst_ip=IPv4Address.parse("10.0.0.2"),
        dst_port=dst_port,
        protocol=proto,
    )


class TestFiveTuple:
    def test_reversed_swaps_endpoints(self):
        flow = _tuple()
        back = flow.reversed()
        assert back.src_ip == flow.dst_ip
        assert back.dst_ip == flow.src_ip
        assert back.src_port == flow.dst_port
        assert back.dst_port == flow.src_port
        assert back.protocol == flow.protocol

    def test_double_reverse_is_identity(self):
        flow = _tuple()
        assert flow.reversed().reversed() == flow

    def test_rejects_bad_ports(self):
        with pytest.raises(ValueError):
            _tuple(src_port=0)
        with pytest.raises(ValueError):
            _tuple(dst_port=70_000)

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            _tuple(proto=1)  # ICMP is deliberately unsupported (§3.4.1)

    def test_udp_allowed(self):
        assert _tuple(proto=PROTO_UDP).protocol == PROTO_UDP

    def test_ecmp_hash_is_deterministic(self):
        assert _tuple().ecmp_hash() == _tuple().ecmp_hash()

    def test_ecmp_hash_varies_with_salt(self):
        flow = _tuple()
        hashes = {flow.ecmp_hash(salt) for salt in range(16)}
        assert len(hashes) > 8

    def test_ecmp_hash_varies_with_source_port(self):
        hashes = {_tuple(src_port=p).ecmp_hash() for p in range(50_000, 50_064)}
        assert len(hashes) > 48  # near-perfect dispersion over 64 ports

    def test_str_format(self):
        assert str(_tuple()) == "10.0.0.1:50000->10.0.0.2:80/tcp"

    @given(
        st.integers(min_value=1, max_value=65_535),
        st.integers(min_value=1, max_value=65_535),
    )
    def test_hash_depends_on_both_ports(self, sport, dport):
        base = _tuple(src_port=sport, dst_port=dport).ecmp_hash()
        other_sport = sport % 65_535 + 1
        if other_sport != sport:
            assert _tuple(src_port=other_sport, dst_port=dport).ecmp_hash() != base


class TestEphemeralPortAllocator:
    def test_allocates_distinct_ports(self):
        allocator = EphemeralPortAllocator()
        ports = [allocator.allocate() for _ in range(1000)]
        assert len(set(ports)) == 1000
        assert all(EPHEMERAL_PORT_MIN <= p <= EPHEMERAL_PORT_MAX for p in ports)

    def test_wraps_around_at_range_end(self):
        allocator = EphemeralPortAllocator(start=EPHEMERAL_PORT_MAX)
        assert allocator.allocate() == EPHEMERAL_PORT_MAX
        assert allocator.allocate() == EPHEMERAL_PORT_MIN

    def test_rejects_start_outside_range(self):
        with pytest.raises(ValueError):
            EphemeralPortAllocator(start=80)
