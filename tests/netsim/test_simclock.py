"""Tests for the simulated clock and event queue."""

import pytest

from repro.netsim.simclock import EventQueue, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(start=100.0).now == 100.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_advance_by(self):
        clock = SimClock(start=2.0)
        clock.advance_by(3.0)
        assert clock.now == 5.0

    def test_cannot_move_backwards(self):
        clock = SimClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_cannot_advance_by_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance_by(-0.1)

    def test_advance_to_same_time_is_fine(self):
        clock = SimClock(start=7.0)
        clock.advance_to(7.0)
        assert clock.now == 7.0


class TestEventQueue:
    def test_runs_events_in_deadline_order(self):
        clock = SimClock()
        queue = EventQueue(clock)
        order = []
        queue.schedule_at(3.0, lambda: order.append("c"))
        queue.schedule_at(1.0, lambda: order.append("a"))
        queue.schedule_at(2.0, lambda: order.append("b"))
        while queue.run_next():
            pass
        assert order == ["a", "b", "c"]

    def test_equal_deadlines_run_in_insertion_order(self):
        queue = EventQueue(SimClock())
        order = []
        for label in "abcde":
            queue.schedule_at(1.0, lambda label=label: order.append(label))
        while queue.run_next():
            pass
        assert order == list("abcde")

    def test_clock_advances_to_event_deadline(self):
        clock = SimClock()
        queue = EventQueue(clock)
        seen = []
        queue.schedule_at(4.5, lambda: seen.append(clock.now))
        queue.run_next()
        assert seen == [4.5]
        assert clock.now == 4.5

    def test_schedule_after_is_relative(self):
        clock = SimClock(start=10.0)
        queue = EventQueue(clock)
        event = queue.schedule_after(2.5, lambda: None)
        assert event.deadline == 12.5

    def test_cannot_schedule_in_past(self):
        clock = SimClock(start=10.0)
        queue = EventQueue(clock)
        with pytest.raises(ValueError):
            queue.schedule_at(9.0, lambda: None)

    def test_negative_delay_rejected(self):
        queue = EventQueue(SimClock())
        with pytest.raises(ValueError):
            queue.schedule_after(-1.0, lambda: None)

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue(SimClock())
        ran = []
        event = queue.schedule_at(1.0, lambda: ran.append(1))
        event.cancel()
        assert queue.run_next() is False
        assert ran == []

    def test_len_excludes_cancelled(self):
        queue = EventQueue(SimClock())
        keep = queue.schedule_at(1.0, lambda: None)
        drop = queue.schedule_at(2.0, lambda: None)
        drop.cancel()
        assert len(queue) == 1
        assert keep.deadline == 1.0

    def test_run_until_stops_at_horizon(self):
        clock = SimClock()
        queue = EventQueue(clock)
        ran = []
        queue.schedule_at(1.0, lambda: ran.append(1))
        queue.schedule_at(5.0, lambda: ran.append(5))
        executed = queue.run_until(3.0)
        assert executed == 1
        assert ran == [1]
        assert clock.now == 3.0  # clock advances to the horizon
        assert len(queue) == 1  # the 5.0 event still pending

    def test_run_until_handles_self_rescheduling(self):
        clock = SimClock()
        queue = EventQueue(clock)
        ticks = []

        def tick():
            ticks.append(clock.now)
            queue.schedule_after(1.0, tick)

        queue.schedule_at(0.0, tick)
        queue.run_until(5.0)
        assert ticks == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_max_events_safety_valve(self):
        clock = SimClock()
        queue = EventQueue(clock)

        def forever():
            queue.schedule_after(0.0, forever)

        queue.schedule_at(0.0, forever)
        executed = queue.run_until(1.0, max_events=50)
        assert executed == 50

    def test_run_for_is_relative(self):
        clock = SimClock(start=100.0)
        queue = EventQueue(clock)
        ran = []
        queue.schedule_at(105.0, lambda: ran.append(1))
        queue.run_for(10.0)
        assert ran == [1]
        assert clock.now == 110.0

    def test_events_run_counter(self):
        queue = EventQueue(SimClock())
        queue.schedule_at(1.0, lambda: None)
        queue.schedule_at(2.0, lambda: None)
        queue.run_until(10.0)
        assert queue.events_run == 2

    def test_callbacks_may_schedule_at_current_time(self):
        clock = SimClock()
        queue = EventQueue(clock)
        order = []

        def first():
            order.append("first")
            queue.schedule_at(clock.now, lambda: order.append("second"))

        queue.schedule_at(1.0, first)
        queue.run_until(1.0)
        assert order == ["first", "second"]
