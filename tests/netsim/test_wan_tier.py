"""The inter-DC tier: directional WAN latency, WAN faults, three-rung parity.

Four layers:

* **Topology** — the ``wan_rtt`` matrix is per *direction*; a probe's RTT
  composes forward + reverse entries (never twice either one), and
  ``set_wan_latency`` bumps the state version so every generation-stamped
  cache rebuilds.
* **Shared drop constant** — ``drops.WAN_DIRECTION_DROP`` is the single
  binding the scalar engine, the analytic fast path, and the class rounds
  all read; monkeypatching it must move all three rungs together.
* **WAN faults** — fiber cut, DCI congestion, partial partition, and
  asymmetric reroute behave per their contracts, register under direction
  markers, and degrade the vectorized rungs to scalar.
* **Property** — across random cut/heal/retime sequences, cached WAN paths
  always equal fresh computation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import drops
from repro.netsim.addressing import FiveTuple
from repro.netsim.fabric import Fabric
from repro.netsim.faults import (
    AsymmetricWanRoute,
    DciCongestion,
    FaultInjector,
    WanFiberCut,
    WanPartialPartition,
    wan_link_id,
)
from repro.netsim.routing import PathScope, Router
from repro.netsim.topology import MultiDCTopology, TopologySpec

_SPECS = [
    TopologySpec(
        name="dc-w", region="us-west", n_podsets=2, pods_per_podset=2,
        servers_per_pod=2,
    ),
    TopologySpec(
        name="dc-e", region="us-east", n_podsets=2, pods_per_podset=2,
        servers_per_pod=2,
    ),
    TopologySpec(
        name="dc-eu", region="europe", n_podsets=2, pods_per_podset=2,
        servers_per_pod=2,
    ),
]


def _topology(wan_asymmetry: float = 0.0) -> MultiDCTopology:
    return MultiDCTopology(list(_SPECS), wan_asymmetry=wan_asymmetry)


def _fabric(seed: int = 7, wan_asymmetry: float = 0.0) -> Fabric:
    return Fabric(_topology(wan_asymmetry), seed=seed)


def _pair(fabric_or_topo):
    topo = getattr(fabric_or_topo, "topology", fabric_or_topo)
    return (
        topo.dc(0).servers_in_podset(0)[0],
        topo.dc(1).servers_in_podset(0)[0],
    )


class TestDirectionalWanMatrix:
    def test_default_matrix_is_symmetric_one_way(self):
        topo = _topology()
        for i in range(3):
            for j in range(3):
                if i == j:
                    continue
                assert topo.wan_rtt[(i, j)] == topo.wan_rtt[(j, i)] > 0.0
                assert topo.wan_pair_rtt(i, j) == (
                    topo.wan_rtt[(i, j)] + topo.wan_rtt[(j, i)]
                )
        assert topo.wan_pair_rtt(0, 0) == 0.0

    def test_asymmetry_skews_directions_but_preserves_pair_rtt(self):
        symmetric = _topology()
        skewed = _topology(wan_asymmetry=0.25)
        for i, j in ((0, 1), (1, 2), (0, 2)):
            assert skewed.wan_rtt[(i, j)] != skewed.wan_rtt[(j, i)]
            assert skewed.wan_pair_rtt(i, j) == pytest.approx(
                symmetric.wan_pair_rtt(i, j)
            )

    def test_wan_asymmetry_validated(self):
        with pytest.raises(ValueError):
            _topology(wan_asymmetry=1.0)
        with pytest.raises(ValueError):
            _topology(wan_asymmetry=-0.1)

    def test_set_wan_latency_updates_one_direction_and_bumps(self):
        topo = _topology()
        before_rev = topo.wan_rtt[(1, 0)]
        version = topo.state_version.value
        topo.set_wan_latency(0, 1, 0.050)
        assert topo.wan_rtt[(0, 1)] == 0.050
        assert topo.wan_rtt[(1, 0)] == before_rev
        assert topo.state_version.value == version + 1

    def test_set_wan_latency_validates(self):
        topo = _topology()
        with pytest.raises(ValueError):
            topo.set_wan_latency(0, 0, 0.01)
        with pytest.raises(KeyError):
            topo.set_wan_latency(0, 9, 0.01)
        with pytest.raises(ValueError):
            topo.set_wan_latency(0, 1, 0.0)

    def test_path_carries_its_directions_entry(self):
        fabric = _fabric()
        src, dst = _pair(fabric)
        fabric.topology.set_wan_latency(0, 1, 0.040)
        fabric.topology.set_wan_latency(1, 0, 0.010)
        flow = FiveTuple(src.ip, 50_000, dst.ip, 81)
        forward = fabric.router.path(src, dst, flow)
        reverse = fabric.router.path(dst, src, flow.reversed())
        assert forward.wan_rtt == 0.040
        assert reverse.wan_rtt == 0.010

    def test_probe_rtt_sums_forward_and_reverse_legs(self):
        """An asymmetric pair's RTT floors at fwd + rev, not 2x either."""
        fabric = _fabric(seed=3)
        src, dst = _pair(fabric)
        fabric.topology.set_wan_latency(0, 1, 0.200)
        fabric.topology.set_wan_latency(1, 0, 0.001)
        pair = fabric.topology.wan_pair_rtt(0, 1)
        results = [fabric.probe(src, dst, t=float(i) * 15) for i in range(20)]
        ok = [r for r in results if r.success]
        assert ok
        for result in ok:
            assert result.rtt_s > pair
            # 2x the long leg would be ~0.4s; the sum is ~0.201s.
            assert result.rtt_s < 2 * 0.200


class TestSharedWanDropConstant:
    def test_kinds_and_path_computations_agree_on_wan(self):
        fabric = _fabric()
        src, dst = _pair(fabric)
        flow = FiveTuple(src.ip, 50_000, dst.ip, 81)
        path = fabric.router.path(src, dst, flow)
        assert path.scope is PathScope.INTER_DC
        model = fabric.drop_model(0)
        assert model.direction_drop_prob(path) == (
            model.direction_drop_prob_kinds(
                tuple(hop.kind for hop in path.hops), wan=True
            )
        )

    def test_wan_drop_keyed_on_scope_not_latency(self):
        """A zero-latency WAN link still pays the crossing drop."""
        fabric = _fabric()
        src, dst = _pair(fabric)
        fabric.topology.wan_rtt[(0, 1)] = 0.0
        fabric.topology.wan_rtt[(1, 0)] = 0.0
        fabric.topology.state_version.bump()
        flow = FiveTuple(src.ip, 50_000, dst.ip, 81)
        path = fabric.router.path(src, dst, flow)
        model = fabric.drop_model(0)
        survive_no_wan = 1.0 - model.direction_drop_prob_kinds(
            tuple(hop.kind for hop in path.hops), wan=False
        )
        survive = 1.0 - model.direction_drop_prob(path)
        assert survive == survive_no_wan * (1.0 - drops.WAN_DIRECTION_DROP)

    def test_monkeypatched_constant_moves_all_three_rungs(self, monkeypatch):
        """One binding: scalar traversal, analytic p_attempt, class facts."""
        monkeypatch.setattr(drops, "WAN_DIRECTION_DROP", 1.0)
        fabric = _fabric(seed=5)
        src, dst = _pair(fabric)
        # Analytic rung: a certain WAN drop makes every attempt fail.
        assert fabric.expected_attempt_drop(src, dst) == 1.0
        # Class rung reads the same number through the kinds formula.
        assert fabric._class_facts(src, dst).p_attempt == 1.0
        # Scalar rung: every inter-DC probe dies on the WAN crossing...
        for i in range(5):
            assert not fabric.probe(src, dst, t=float(i) * 15).success
        # ...while intra-DC probes never consult the constant.
        local = fabric.topology.dc(0).servers_in_podset(1)[0]
        assert fabric.probe(src, local, t=300.0).success

    def test_scalar_drop_rate_matches_analytic_with_inflated_constant(
        self, monkeypatch
    ):
        """Statistical pin: scalar Monte Carlo agrees with the closed form."""
        monkeypatch.setattr(drops, "WAN_DIRECTION_DROP", 0.25)
        fabric = _fabric(seed=13)
        src, dst = _pair(fabric)
        p_attempt = fabric.expected_attempt_drop(src, dst)
        # Both directions pay 25%: p_attempt ~ 1 - 0.75^2 ~ 0.4375.
        assert p_attempt == pytest.approx(0.4375, abs=0.01)
        flow = FiveTuple(src.ip, 50_000, dst.ip, 81)
        forward = fabric.router.path(src, dst, flow)
        reverse = fabric.router.path(dst, src, flow.reversed())
        n = 3000
        failures = 0
        for _ in range(n):
            ok, _extra = fabric._traverse(forward, flow, 0)
            if ok:
                ok, _extra = fabric._traverse(reverse, flow.reversed(), 0)
            failures += not ok
        # 5-sigma noise bound on a 3000-sample Bernoulli estimate.
        assert failures / n == pytest.approx(p_attempt, abs=0.05)


class TestWanFaultKinds:
    def test_fiber_cut_kills_both_directions_and_heals(self):
        fabric = _fabric(seed=9)
        src, dst = _pair(fabric)
        fault = fabric.faults.inject(WanFiberCut(src_dc=0, dst_dc=1))
        assert set(fault.link_ids()) == {
            wan_link_id(0, 1), wan_link_id(1, 0),
        }
        for t, (a, b) in enumerate(((src, dst), (dst, src))):
            result = fabric.probe(a, b, t=float(t) * 15)
            assert not result.success
        # A pair not touching the cut trench still crosses fine.
        eu = fabric.topology.dc(2).servers_in_podset(0)[0]
        assert fabric.probe(src, eu, t=100.0).success
        fabric.faults.clear(fault)
        assert fabric.probe(src, dst, t=200.0).success

    def test_fiber_cut_markers_visible_to_envelope_machinery(self):
        fabric = _fabric()
        fault = fabric.faults.inject(WanFiberCut(src_dc=0, dst_dc=1))
        marked = fabric.faults.faulted_switch_ids()
        assert wan_link_id(0, 1) in marked
        assert wan_link_id(1, 0) in marked
        assert fabric.faults.wan_faults_on(0, 1) == [fault]
        assert fabric.faults.wan_faults_on(1, 0) == [fault]
        assert fabric.faults.wan_faults_on(0, 2) == []

    def test_directional_fault_touches_one_direction_only(self):
        fabric = _fabric()
        fault = fabric.faults.inject(
            DciCongestion(src_dc=0, dst_dc=1, drop_prob=0.0)
        )
        assert fabric.faults.wan_faults_on(0, 1) == [fault]
        assert fabric.faults.wan_faults_on(1, 0) == []

    def test_congestion_queueing_inflates_rtt(self):
        fabric = _fabric(seed=21)
        src, dst = _pair(fabric)
        pair = fabric.topology.wan_pair_rtt(0, 1)
        fabric.faults.inject(
            DciCongestion(src_dc=0, dst_dc=1, drop_prob=0.0, extra_queue_s=0.030)
        )
        for i in range(10):
            result = fabric.probe(src, dst, t=float(i) * 15)
            if result.success:
                assert result.rtt_s > pair + 0.030

    def test_asymmetric_reroute_adds_latency_no_loss(self):
        fabric = _fabric(seed=23)
        src, dst = _pair(fabric)
        pair = fabric.topology.wan_pair_rtt(0, 1)
        fabric.faults.inject(
            AsymmetricWanRoute(src_dc=1, dst_dc=0, extra_latency_s=0.030)
        )
        results = [fabric.probe(src, dst, t=float(i) * 15) for i in range(10)]
        ok = [r for r in results if r.success]
        # 1e-5-scale baseline loss: expect essentially all to succeed.
        assert len(ok) >= 9
        # The SYN-ACK leg (dc1 -> dc0) pays the reroute on every probe.
        for result in ok:
            assert result.rtt_s > pair + 0.030

    def test_partial_partition_is_deterministic_and_pairwise(self):
        fabric = _fabric(seed=17)
        fabric.faults.inject(
            WanPartialPartition(src_dc=0, dst_dc=1, fraction=0.5)
        )
        fault = fabric.faults.wan_faults_on(0, 1)[0]
        sources = fabric.topology.dc(0).servers
        targets = fabric.topology.dc(1).servers
        verdicts = {}
        for s in sources:
            for d in targets:
                # Unordered-pair hash: SYN and SYN-ACK must agree.
                assert fault.matches(s.ip, d.ip) == fault.matches(d.ip, s.ip)
                verdicts[(s.device_id, d.device_id)] = fault.matches(s.ip, d.ip)
        assert any(verdicts.values()) and not all(verdicts.values())
        for (src_id, dst_id), blocked in list(verdicts.items())[:16]:
            result = fabric.probe(src_id, dst_id, t=30.0)
            assert result.success != blocked

    def test_wan_fault_survives_reload_and_rejects_same_dc(self):
        fabric = _fabric()
        fault = fabric.faults.inject(WanFiberCut(src_dc=0, dst_dc=1))
        for dc in (fabric.topology.dc(0), fabric.topology.dc(1)):
            for border in dc.borders:
                fabric.faults.on_reload(border)
        assert fabric.faults.wan_faults_on(0, 1) == [fault]
        with pytest.raises(ValueError):
            WanFiberCut(src_dc=1, dst_dc=1)


class TestThreeRungParityUnderWanFaults:
    def _entries(self, fabric):
        return [
            (server.device_id, 81, 0)
            for server in fabric.topology.dc(1).servers[:6]
        ]

    def test_probe_many_degrades_wan_faulted_pairs_to_scalar(self):
        """With every entry on the faulted trench, probe_many must produce
        the exact probe stream the scalar engine does — same RNG draws."""
        scalar = _fabric(seed=31)
        fast = _fabric(seed=31)
        for fabric in (scalar, fast):
            fabric.faults.inject(
                WanPartialPartition(src_dc=0, dst_dc=1, fraction=0.5)
            )
        src, _ = _pair(scalar)
        entries = self._entries(scalar)
        want = [scalar.probe(src, dst_id, t=10.0, dst_port=port)
                for dst_id, port, _payload in entries]
        got = fast.probe_many(src, entries, t=10.0)
        assert [(r.success, r.rtt_s, r.syn_drops) for r in got] == [
            (r.success, r.rtt_s, r.syn_drops) for r in want
        ]

    def test_class_plan_degrades_only_the_faulted_pair(self):
        fabric = _fabric()
        src, _ = _pair(fabric)
        local = fabric.topology.dc(0).servers_in_podset(1)[0]
        remote = fabric.topology.dc(1).servers_in_podset(0)[0]
        eu = fabric.topology.dc(2).servers_in_podset(0)[0]
        entries = [(local.device_id, 81, 0), (remote.device_id, 81, 0),
                   (eu.device_id, 81, 0)]
        fabric.faults.inject(WanFiberCut(src_dc=0, dst_dc=1))
        plan = fabric.build_class_plan(src, entries)
        # Only the dc0<->dc1 entry is fault-touched; dc0->dc2 stays classed.
        assert plan.passthrough == [1]
        assert plan.n_class_probes == 2

    def test_class_groups_split_on_destination_and_direction(self):
        fabric = _fabric()
        fabric.topology.set_wan_latency(0, 1, 0.040)
        src, _ = _pair(fabric)
        remote_e = fabric.topology.dc(1).servers[:2]
        remote_eu = fabric.topology.dc(2).servers[:2]
        entries = [(s.device_id, 81, 0) for s in remote_e + remote_eu]
        plan = fabric.build_class_plan(src, entries)
        groups = {g.dst_dc: g for g in plan.groups}
        assert set(groups) == {1, 2}
        assert groups[1].wan_fwd == 0.040
        assert groups[1].wan_rev == fabric.topology.wan_rtt[(1, 0)]
        assert groups[1].wan_rtt == groups[1].wan_fwd + groups[1].wan_rev
        outcomes = fabric.run_class_plan(plan)
        assert {o.dst_dc for o in outcomes} == {1, 2}

    def test_class_round_rtt_includes_pair_wan_rtt(self):
        fabric = _fabric(seed=41)
        src, _ = _pair(fabric)
        fabric.topology.set_wan_latency(0, 1, 0.200)
        fabric.topology.set_wan_latency(1, 0, 0.001)
        entries = [(s.device_id, 81, 0) for s in fabric.topology.dc(1).servers]
        plan = fabric.build_class_plan(src, entries)
        outcomes = fabric.run_class_plan(plan)
        rtts = np.concatenate([o.rtt_s for o in outcomes])
        assert rtts.size
        assert np.all(rtts > 0.201)
        assert np.all(rtts < 0.400)

    def test_p_attempt_parity_holds_under_asymmetric_latency(self):
        """Direction-skewed latency must not perturb the drop closed form."""
        fabric = _fabric(wan_asymmetry=0.3)
        src, dst = _pair(fabric)
        facts = fabric._class_facts(src, dst)
        assert facts.p_attempt == fabric.expected_attempt_drop(src, dst)


_WAN_OPS = ("cut", "heal", "retime", "congest", "noop")


class TestWanCacheInvalidationProperty:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(_WAN_OPS), st.integers(0, 10_000)),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_cached_wan_path_equals_fresh_across_cut_heal(self, ops):
        """Fiber cuts, heals, and latency retimes never leave a stale WAN
        path (or stale wan_rtt) in the generation-stamped cache."""
        topo = MultiDCTopology(
            [
                TopologySpec(
                    name="dc-w", region="us-west", n_podsets=1,
                    pods_per_podset=2, servers_per_pod=2,
                ),
                TopologySpec(
                    name="dc-e", region="us-east", n_podsets=1,
                    pods_per_podset=2, servers_per_pod=2,
                ),
            ]
        )
        router = Router(topo)
        injector = FaultInjector(state_version=topo.state_version)
        active: list = []
        src = topo.dc(0).servers[0]
        dst = topo.dc(1).servers[0]

        def check():
            for port in (50_000, 50_007):
                flow = FiveTuple(src.ip, port, dst.ip, 81)
                cached = router.path(src, dst, flow)
                fresh = router.uncached_path(src, dst, flow)
                assert cached.hop_ids() == fresh.hop_ids()
                assert cached.wan_rtt == fresh.wan_rtt
                assert cached.wan_rtt == topo.wan_rtt[(0, 1)]
                rev = router.path(dst, src, flow.reversed())
                assert rev.wan_rtt == topo.wan_rtt[(1, 0)]

        check()
        for op, pick in ops:
            if op == "cut":
                active.append(injector.inject(WanFiberCut(src_dc=0, dst_dc=1)))
            elif op == "heal" and active:
                injector.clear(active.pop(pick % len(active)))
            elif op == "retime":
                one_way = 0.001 + (pick % 100) / 1000.0
                topo.set_wan_latency(pick % 2, (pick + 1) % 2, one_way)
            elif op == "congest":
                active.append(
                    injector.inject(DciCongestion(src_dc=pick % 2, dst_dc=(pick + 1) % 2))
                )
            check()
