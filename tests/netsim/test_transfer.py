"""Tests for multi-RTT transfer probes (the §6.4 extension)."""

import pytest

from repro.netsim.fabric import Fabric
from repro.netsim.topology import MultiDCTopology, TopologySpec
from repro.netsim.transfer import (
    MSS_BYTES,
    transfer_probe,
    transfer_rounds,
)


class TestTransferRounds:
    def test_zero_payload_zero_rounds(self):
        assert transfer_rounds(0, icw_segments=16) == 0

    def test_single_segment_one_round(self):
        assert transfer_rounds(100, icw_segments=16) == 1

    def test_fits_in_initial_window(self):
        # 16 segments fit in ICW=16: one round trip.
        assert transfer_rounds(16 * MSS_BYTES, icw_segments=16) == 1

    def test_slow_start_doubling(self):
        # ICW=4 delivers 4, 8, 16... segments per round: 28 segs in 3 rounds.
        assert transfer_rounds(28 * MSS_BYTES, icw_segments=4) == 3
        assert transfer_rounds(29 * MSS_BYTES, icw_segments=4) == 4

    def test_icw_16_vs_4_round_gap(self):
        """The §6.4 incident: the same payload needs more rounds at ICW=4."""
        payload = 45 * MSS_BYTES  # ~64 KB
        assert transfer_rounds(payload, icw_segments=16) == 2
        assert transfer_rounds(payload, icw_segments=4) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            transfer_rounds(-1, icw_segments=16)
        with pytest.raises(ValueError):
            transfer_rounds(100, icw_segments=0)


class TestTransferProbe:
    @pytest.fixture(scope="class")
    def wan_fabric(self):
        return Fabric(
            MultiDCTopology(
                [
                    TopologySpec(name="w", region="us-west"),
                    TopologySpec(name="e", region="europe"),
                ]
            ),
            seed=7,
        )

    def test_local_transfer_completes(self):
        fabric = Fabric.single_dc(TopologySpec(), seed=1)
        dc = fabric.topology.dc(0)
        result = transfer_probe(fabric, dc.servers[0], dc.servers[30], 64_000)
        assert result.success
        assert result.data_round_trips >= 2
        assert result.completion_s > result.handshake_rtt_s

    def test_icw_regression_visible_on_long_distance(self, wan_fabric):
        """Transfer probes catch what single-RTT pings miss: the ICW=4
        misconfiguration adds WAN round trips."""
        a = wan_fabric.topology.dc(0).servers[0]
        b = wan_fabric.topology.dc(1).servers[0]
        wan_rtt = wan_fabric.topology.wan_pair_rtt(0, 1)
        tuned = transfer_probe(wan_fabric, a, b, 64_000, icw_segments=16)
        broken = transfer_probe(wan_fabric, a, b, 64_000, icw_segments=4)
        assert broken.data_round_trips > tuned.data_round_trips
        # "the session finish time increased by several hundreds of
        # milliseconds" — at least one extra WAN round trip.
        assert broken.completion_s - tuned.completion_s > 0.8 * wan_rtt

    def test_single_rtt_ping_blind_to_icw(self, wan_fabric):
        """And the regular probe is indeed blind to the ICW (§6.4)."""
        a = wan_fabric.topology.dc(0).servers[1]
        b = wan_fabric.topology.dc(1).servers[1]
        # The handshake RTT distribution has no ICW dependence at all:
        # transfer_probe's handshake leg is the plain probe.
        tuned = transfer_probe(wan_fabric, a, b, 0, icw_segments=16)
        broken = transfer_probe(wan_fabric, a, b, 0, icw_segments=4)
        assert tuned.data_round_trips == broken.data_round_trips == 0

    def test_failed_handshake_propagates(self):
        fabric = Fabric.single_dc(TopologySpec(), seed=2)
        dc = fabric.topology.dc(0)
        victim = dc.servers[5]
        victim.bring_down()
        result = transfer_probe(fabric, dc.servers[0], victim, 10_000)
        assert not result.success
        assert result.error == "timeout"
        assert result.data_round_trips == 0
