"""Component-level tests of the latency model (each RTT term in isolation)."""

import numpy as np
import pytest

from repro.netsim.latency import LINK_SPEED_BPS, LatencyModel
from repro.netsim.workload import profile_for


@pytest.fixture(scope="module")
def model():
    return LatencyModel(profile_for("throughput"))


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestHostShare:
    def test_median_matches_profile(self, model):
        samples = model.host_share(_rng(), 100_000)
        assert np.median(samples) == pytest.approx(
            model.profile.host_median_s, rel=0.03
        )

    def test_lognormal_right_skew(self, model):
        samples = model.host_share(_rng(), 100_000)
        assert np.mean(samples) > np.median(samples)


class TestHopShare:
    def test_zero_hops_contributes_nothing(self, model):
        assert (model.hop_share(_rng(), 0, t=0.0, n=100) == 0).all()

    def test_scales_with_hop_count(self, model):
        one = np.median(model.hop_share(_rng(1), 1, t=0.0, n=50_000))
        five = np.median(model.hop_share(_rng(1), 5, t=0.0, n=50_000))
        assert five > 3 * one

    def test_utilization_raises_queueing(self, model):
        # Utilization peaks a quarter-day in (diurnal sine maximum).
        quiet_t = 3 * 86_400 / 4
        busy_t = 86_400 / 4
        quiet = np.mean(model.hop_share(_rng(2), 5, t=quiet_t, n=100_000))
        busy = np.mean(model.hop_share(_rng(2), 5, t=busy_t, n=100_000))
        assert busy > quiet


class TestStall:
    def test_rare_but_huge(self, model):
        samples = model.stall(_rng(3), 1_000_000)
        hit_rate = (samples > 0).mean()
        assert hit_rate == pytest.approx(model.profile.stall_prob, rel=0.15)
        assert samples.max() > 0.05  # at least tens of ms

    def test_capped_below_syn_signature(self, model):
        """No stall may impersonate a 3 s retransmission (Table 1 purity)."""
        samples = model.stall(_rng(4), 2_000_000)
        assert samples.max() <= model.profile.stall_cap_s
        assert model.profile.stall_cap_s < 3.0

    def test_no_hits_returns_zeros(self):
        profile = profile_for("throughput")
        model = LatencyModel(profile)
        samples = model.stall(_rng(5), 10)  # 10 draws at p≈2e-3: ~never
        assert samples.shape == (10,)


class TestPayloadExtra:
    def test_zero_payload_is_free(self, model):
        assert (model.payload_extra(_rng(), 0, 100) == 0).all()

    def test_includes_wire_transmission(self, model):
        # Large payloads are bounded below by serialization time both ways.
        payload = 64_000
        floor = 2 * payload * 8 / LINK_SPEED_BPS
        samples = model.payload_extra(_rng(6), payload, 10_000)
        assert samples.min() >= floor

    def test_echo_cost_dominates_small_payloads(self, model):
        samples = model.payload_extra(_rng(7), 1000, 100_000)
        transmission = 2 * 1000 * 8 / LINK_SPEED_BPS
        assert np.median(samples) > 10 * transmission
