"""Tests for the canned incident scenarios."""

import pytest

from repro.netsim.fabric import Fabric
from repro.netsim.scenarios import SCENARIOS, apply_scenario
from repro.netsim.topology import TopologySpec


@pytest.fixture()
def fabric():
    return Fabric.single_dc(TopologySpec(), seed=8)


class TestScenarioRegistry:
    def test_all_scenarios_apply_and_revert(self, fabric):
        for name in SCENARIOS:
            scenario = apply_scenario(name, fabric)
            assert scenario.name == name
            assert scenario.description
            scenario.revert()
        assert not fabric.faults.has_faults()
        assert all(server.is_up for server in fabric.topology.all_servers())

    def test_unknown_scenario_raises(self, fabric):
        with pytest.raises(KeyError):
            apply_scenario("alien-invasion", fabric)


class TestScenarioEffects:
    def test_tor_blackhole_breaks_pairs_deterministically(self, fabric):
        scenario = apply_scenario("tor-blackhole", fabric)
        dc = fabric.topology.dc(0)
        pod = dc.tors.index(dc.device(scenario.ground_truth_devices[0]))
        servers = dc.servers_in_pod(pod)
        outcomes = {
            (a.device_id, b.device_id): fabric.probe(a, b).success
            for a in servers[:4]
            for b in servers[:4]
            if a is not b
        }
        # Deterministic: re-probing any pair gives the same answer.
        for (a, b), success in outcomes.items():
            assert fabric.probe(a, b).success == success
        assert not all(outcomes.values())
        scenario.revert()
        assert all(
            fabric.probe(a, b).success
            for a in servers[:3]
            for b in servers[:3]
            if a is not b
        )

    def test_podset_down_and_revert(self, fabric):
        scenario = apply_scenario("podset-down", fabric)
        dc = fabric.topology.dc(0)
        assert all(not s.is_up for s in dc.servers_in_podset(1))
        scenario.revert()
        assert all(s.is_up for s in dc.servers_in_podset(1))

    def test_silent_spine_is_snmp_clean(self, fabric):
        scenario = apply_scenario("silent-spine", fabric)
        spine = fabric.topology.device(scenario.ground_truth_devices[0])
        dc = fabric.topology.dc(0)
        for _ in range(300):
            fabric.probe(dc.servers_in_podset(0)[0], dc.servers_in_podset(1)[0])
        assert spine.counters.visible()["input_discards"] == 0
        assert spine.counters.visible()["output_discards"] == 0

    def test_fcs_errors_prefer_big_frames(self, fabric):
        scenario = apply_scenario("fcs-errors", fabric)
        leaf_id = scenario.ground_truth_devices[0]
        dc = fabric.topology.dc(0)
        a, b = dc.servers_in_pod(0)[0], dc.servers_in_pod(1)[0]
        small_drops = big_drops = 0
        for _ in range(400):
            small = fabric.probe(a, b)
            big = fabric.probe(a, b, payload_bytes=30_000)
            if leaf_id in small.forward_hops:
                small_drops += small.syn_drops
                if big.payload_rtt_s is None or big.payload_rtt_s > 0.25:
                    big_drops += 1
        # Length-dependent: payload exchanges suffer far more than SYNs.
        assert big_drops > small_drops

    def test_leaf_congestion_latency_visible(self, fabric):
        import numpy as np

        dc = fabric.topology.dc(0)
        a, b = dc.servers_in_pod(0)[0], dc.servers_in_pod(1)[0]
        before = np.median([fabric.probe(a, b).rtt_s for _ in range(50)])
        apply_scenario("leaf-congestion", fabric)
        after = np.median([fabric.probe(a, b).rtt_s for _ in range(50)])
        assert after > before + 5e-3  # the injected 7 ms queue
