"""Tests for probe explanation."""

import pytest

from repro.netsim.explain import explain_probe
from repro.netsim.fabric import Fabric
from repro.netsim.faults import BlackholeType1, SilentRandomDrop
from repro.netsim.topology import TopologySpec


@pytest.fixture()
def fabric():
    return Fabric.single_dc(TopologySpec(), seed=15)


def _cross_pair(fabric):
    dc = fabric.topology.dc(0)
    return dc.servers_in_podset(0)[0], dc.servers_in_podset(1)[0]


class TestHealthyExplanations:
    def test_delivered_probe(self, fabric):
        a, b = _cross_pair(fabric)
        explanation = explain_probe(fabric, a, b)
        assert explanation.outcome == "delivered"
        assert len(explanation.forward_hops) == 5
        assert len(explanation.reverse_hops) == 5
        assert explanation.culprits == {}

    def test_render_is_readable(self, fabric):
        a, b = _cross_pair(fabric)
        text = explain_probe(fabric, a, b).render()
        assert "delivered" in text
        assert "forward path:" in text
        assert "SYN attempt 1: delivered" in text

    def test_accepts_server_objects_and_ids(self, fabric):
        a, b = _cross_pair(fabric)
        by_object = explain_probe(fabric, a, b)
        by_id = explain_probe(fabric, a.device_id, b.device_id)
        assert by_object.src == by_id.src


class TestFailureExplanations:
    def test_blackhole_named_as_culprit(self, fabric):
        a, b = fabric.topology.dc(0).servers_in_pod(0)[:2]
        tor = fabric.topology.dc(0).tor_of(a)
        fabric.faults.inject(BlackholeType1(switch_id=tor.device_id, fraction=1.0))
        explanation = explain_probe(fabric, a, b)
        assert explanation.outcome == "timeout"
        assert tor.device_id in explanation.culprits
        assert explanation.culprits[tor.device_id] == 3  # every attempt
        assert "BlackholeType1" in explanation.render()

    def test_silent_dropper_accumulates_statistical_blame(self, fabric):
        a, b = _cross_pair(fabric)
        for spine in fabric.topology.dc(0).spines:
            fabric.faults.inject(
                SilentRandomDrop(switch_id=spine.device_id, drop_prob=0.9)
            )
        explanation = explain_probe(fabric, a, b, attempts=20)
        assert explanation.culprits
        assert any("spine" in device for device in explanation.culprits)

    def test_dst_down(self, fabric):
        a, b = _cross_pair(fabric)
        b.bring_down()
        explanation = explain_probe(fabric, a, b)
        assert explanation.outcome == "dst_down"

    def test_src_down(self, fabric):
        a, b = _cross_pair(fabric)
        a.bring_down()
        explanation = explain_probe(fabric, a, b)
        assert explanation.outcome == "src_down"
        assert explanation.attempts == []

    def test_no_route(self, fabric):
        dc = fabric.topology.dc(0)
        a, b = dc.servers_in_pod(0)[0], dc.servers_in_pod(1)[0]
        for leaf in dc.leaves_of(0):
            leaf.bring_down()
        explanation = explain_probe(fabric, a, b)
        assert explanation.outcome == "no_route"
        assert explanation.forward_hops == []

    def test_decision_fields(self, fabric):
        a, b = fabric.topology.dc(0).servers_in_pod(0)[:2]
        tor = fabric.topology.dc(0).tor_of(a)
        fabric.faults.inject(BlackholeType1(switch_id=tor.device_id, fraction=1.0))
        explanation = explain_probe(fabric, a, b, attempts=1)
        decision = explanation.attempts[0][0]
        assert decision.device_id == tor.device_id
        assert decision.direction == "forward"
        assert decision.action == "dropped-fault"
