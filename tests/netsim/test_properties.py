"""Property-based invariants over random topologies and flows."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller.generator import PingmeshGenerator
from repro.netsim.addressing import FiveTuple
from repro.netsim.devices import DeviceKind
from repro.netsim.fabric import Fabric
from repro.netsim.routing import PathScope, Router
from repro.netsim.topology import MultiDCTopology, TopologySpec

# Small bounded topologies keep each example fast while varying structure.
topologies = st.builds(
    TopologySpec,
    n_podsets=st.integers(min_value=1, max_value=3),
    pods_per_podset=st.integers(min_value=1, max_value=4),
    servers_per_pod=st.integers(min_value=1, max_value=6),
    leaves_per_podset=st.integers(min_value=1, max_value=3),
    n_spines=st.integers(min_value=1, max_value=5),
)


class TestRoutingInvariants:
    @given(
        topologies,
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=49_152, max_value=65_535),
    )
    @settings(max_examples=60, deadline=None)
    def test_path_structure_always_valid(self, spec, i, j, port):
        """Any path: starts at src's ToR, ends at dst's ToR, valid tiers."""
        topo = MultiDCTopology.single(spec)
        servers = topo.dc(0).servers
        src = servers[i % len(servers)]
        dst = servers[j % len(servers)]
        router = Router(topo)
        flow = FiveTuple(src.ip, port, dst.ip, 81)
        path = router.path(src, dst, flow)

        if src is dst:
            assert path.scope == PathScope.SAME_HOST
            assert path.hops == []
            return
        assert path.hops[0] is topo.dc(0).tor_of(src)
        assert path.hops[-1] is topo.dc(0).tor_of(dst) or (
            path.scope == PathScope.INTRA_POD
        )
        # Tier sequence is one of the three legal intra-DC shapes.
        kinds = tuple(hop.kind for hop in path.hops)
        assert kinds in (
            (DeviceKind.TOR,),
            (DeviceKind.TOR, DeviceKind.LEAF, DeviceKind.TOR),
            (
                DeviceKind.TOR,
                DeviceKind.LEAF,
                DeviceKind.SPINE,
                DeviceKind.LEAF,
                DeviceKind.TOR,
            ),
        )
        # Every hop is up (routing never uses down devices).
        assert all(hop.is_up for hop in path.hops)
        assert path.wan_rtt == 0.0

    @given(
        topologies,
        st.integers(min_value=49_152, max_value=65_535),
    )
    @settings(max_examples=40, deadline=None)
    def test_path_deterministic_per_flow(self, spec, port):
        topo = MultiDCTopology.single(spec)
        servers = topo.dc(0).servers
        src, dst = servers[0], servers[-1]
        router = Router(topo)
        flow = FiveTuple(src.ip, port, dst.ip, 81)
        assert (
            router.path(src, dst, flow).hop_ids()
            == router.path(src, dst, flow).hop_ids()
        )


class TestGeneratorInvariants:
    @given(topologies)
    @settings(max_examples=30, deadline=None)
    def test_no_server_pings_itself_and_peers_exist(self, spec):
        topo = MultiDCTopology.single(spec)
        generator = PingmeshGenerator(topo)
        for server in topo.dc(0).servers[:6]:
            pinglist = generator.generate_for(server.device_id)
            for entry in pinglist.entries:
                assert entry.peer_id != server.device_id
                peer = topo.server(entry.peer_id)  # must resolve
                if entry.purpose == "intra-pod":
                    assert peer.pod_index == server.pod_index
                elif entry.purpose == "tor-level":
                    assert peer.pod_index != server.pod_index
                    assert peer.host_index == server.host_index

    @given(topologies)
    @settings(max_examples=20, deadline=None)
    def test_probing_matrix_is_symmetric(self, spec):
        """i pings j  <=>  j pings i (both directions generated)."""
        topo = MultiDCTopology.single(spec)
        pinglists = PingmeshGenerator(topo).generate_all()
        edges = {
            (src, entry.peer_id)
            for src, pinglist in pinglists.items()
            for entry in pinglist.entries
        }
        assert all((dst, src) in edges for src, dst in edges)


class TestFabricInvariants:
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_probe_outcome_well_formed(self, seed, pair_index):
        fabric = Fabric.single_dc(TopologySpec(), seed=seed)
        servers = fabric.topology.dc(0).servers
        src = servers[pair_index % len(servers)]
        dst = servers[(pair_index * 7 + 1) % len(servers)]
        result = fabric.probe(src, dst)
        assert result.rtt_s >= 0
        if result.success:
            assert result.error is None
            assert result.syn_drops in (0, 1, 2)
            # RTT must be consistent with the retransmission signature.
            if result.syn_drops == 0:
                assert result.rtt_s < 3.0
            elif result.syn_drops == 1:
                assert 3.0 <= result.rtt_s < 9.0
            else:
                assert 9.0 <= result.rtt_s < 21.0
        else:
            assert result.error is not None

    @given(st.integers(min_value=1, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_batch_probe_statistics_sane(self, seed):
        fabric = Fabric.single_dc(TopologySpec(), seed=seed)
        dc = fabric.topology.dc(0)
        batch = fabric.batch_probe(dc.servers[0], dc.servers[30], 2000)
        assert batch.success.mean() > 0.99
        ok = batch.successful_rtts()
        assert (ok > 0).all()
        assert np.median(ok) < 5e-3  # healthy medians are sub-ms scale
