"""Tests for TCP handshake/exchange retransmission semantics."""

import pytest

from repro.netsim.tcp import (
    DATA_RETRIES,
    SYN_RETRIES,
    SYN_TIMEOUT_S,
    run_data_exchange,
    run_syn_handshake,
    syn_rtt_signature,
)


def _attempts(pattern):
    """Build an attempt callable from a list of booleans (True=delivered)."""
    remaining = list(pattern)

    def attempt():
        return remaining.pop(0), 0.0

    return attempt


class TestSynHandshake:
    def test_clean_connect_waits_nothing(self):
        outcome = run_syn_handshake(_attempts([True]))
        assert outcome.success
        assert outcome.attempts == 1
        assert outcome.drops == 0
        assert outcome.waited_s == 0.0

    def test_one_drop_shows_3s_signature(self):
        outcome = run_syn_handshake(_attempts([False, True]))
        assert outcome.success
        assert outcome.drops == 1
        assert outcome.waited_s == pytest.approx(3.0)

    def test_two_drops_show_9s_signature(self):
        outcome = run_syn_handshake(_attempts([False, False, True]))
        assert outcome.success
        assert outcome.drops == 2
        assert outcome.waited_s == pytest.approx(9.0)

    def test_three_drops_fail_the_probe(self):
        outcome = run_syn_handshake(_attempts([False, False, False]))
        assert not outcome.success
        assert outcome.attempts == 1 + SYN_RETRIES
        assert outcome.waited_s == pytest.approx(21.0)  # 3 + 6 + 12

    def test_extra_latency_propagated_from_successful_attempt(self):
        def attempt():
            return True, 0.005

        outcome = run_syn_handshake(attempt)
        assert outcome.extra_latency_s == 0.005

    def test_signature_helper_agrees_with_handshake(self):
        assert syn_rtt_signature(0) == 0.0
        assert syn_rtt_signature(1) == pytest.approx(3.0)
        assert syn_rtt_signature(2) == pytest.approx(9.0)
        assert syn_rtt_signature(3) == pytest.approx(21.0)

    def test_timeout_doubles_from_initial(self):
        assert syn_rtt_signature(1) == SYN_TIMEOUT_S
        assert syn_rtt_signature(2) == SYN_TIMEOUT_S * 3


class TestDataExchange:
    def test_clean_exchange(self):
        outcome = run_data_exchange(_attempts([True]))
        assert outcome.success
        assert outcome.waited_s == 0.0

    def test_data_retransmit_uses_short_rto(self):
        outcome = run_data_exchange(_attempts([False, True]))
        assert outcome.success
        assert outcome.waited_s == pytest.approx(0.3)

    def test_data_gives_up_after_retries(self):
        outcome = run_data_exchange(_attempts([False] * (1 + DATA_RETRIES)))
        assert not outcome.success
        assert outcome.attempts == 1 + DATA_RETRIES

    def test_data_rto_doubles(self):
        outcome = run_data_exchange(_attempts([False, False, False, True]))
        assert outcome.waited_s == pytest.approx(0.3 + 0.6 + 1.2)
