"""Tests for workload profiles."""

import pytest

from repro.netsim.workload import PROFILES, WorkloadProfile, profile_for


class TestProfileRegistry:
    def test_table1_profiles_present(self):
        for name in (
            "dc1-us-west",
            "dc2-us-central",
            "dc3-us-east",
            "dc4-europe",
            "dc5-asia",
        ):
            assert name in PROFILES

    def test_profile_for_unknown_raises(self):
        with pytest.raises(KeyError):
            profile_for("nope")

    def test_table1_targets_match_paper(self):
        # Table 1 of the paper, verbatim.
        expectations = {
            "dc1-us-west": (1.31e-5, 7.55e-5),
            "dc2-us-central": (2.10e-5, 7.63e-5),
            "dc3-us-east": (9.58e-6, 4.00e-5),
            "dc4-europe": (1.52e-5, 5.32e-5),
            "dc5-asia": (9.82e-6, 1.54e-5),
        }
        for name, (intra, inter) in expectations.items():
            profile = profile_for(name)
            assert profile.intra_pod_drop == pytest.approx(intra)
            assert profile.inter_pod_drop == pytest.approx(inter)


class TestValidation:
    def _base_kwargs(self):
        base = profile_for("throughput")
        return {
            field: getattr(base, field)
            for field in base.__dataclass_fields__
        }

    def test_rejects_inter_below_intra(self):
        kwargs = self._base_kwargs()
        kwargs.update(intra_pod_drop=1e-4, inter_pod_drop=1e-5)
        with pytest.raises(ValueError):
            WorkloadProfile(**kwargs)

    def test_rejects_full_utilization(self):
        kwargs = self._base_kwargs()
        kwargs.update(base_utilization=1.0)
        with pytest.raises(ValueError):
            WorkloadProfile(**kwargs)

    def test_rejects_implausible_drop_rate(self):
        kwargs = self._base_kwargs()
        kwargs.update(intra_pod_drop=0.5, inter_pod_drop=0.6)
        with pytest.raises(ValueError):
            WorkloadProfile(**kwargs)


class TestBehaviour:
    def test_utilization_diurnal_and_bounded(self):
        profile = profile_for("throughput")
        values = [profile.utilization(t * 3600.0) for t in range(48)]
        assert all(0.0 <= v <= 0.98 for v in values)
        assert max(values) > min(values)  # the sinusoid actually moves

    def test_sync_window_detection(self):
        profile = profile_for("service-sync")
        assert profile.in_sync_window(0.0)
        assert profile.in_sync_window(profile.sync_duration_s - 1)
        assert not profile.in_sync_window(profile.sync_duration_s + 1)
        # Next period wraps around.
        assert profile.in_sync_window(profile.sync_period_s + 1)

    def test_no_sync_window_when_disabled(self):
        profile = profile_for("throughput")
        assert not any(profile.in_sync_window(t * 60.0) for t in range(1440))

    def test_sync_boosts_burst_probability(self):
        profile = profile_for("service-sync")
        in_sync = profile.burst_probability(60.0)
        outside = profile.burst_probability(profile.sync_duration_s + 3600.0)
        assert in_sync > outside

    def test_with_drop_targets_copies(self):
        base = profile_for("throughput")
        derived = base.with_drop_targets(1e-6, 1e-5)
        assert derived.intra_pod_drop == 1e-6
        assert base.intra_pod_drop == 1.31e-5  # original untouched
        assert derived.host_median_s == base.host_median_s
