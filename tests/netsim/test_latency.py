"""Tests for the RTT latency model."""

import numpy as np
import pytest

from repro.netsim.latency import LatencyModel
from repro.netsim.workload import profile_for


@pytest.fixture(scope="module")
def model():
    return LatencyModel(profile_for("throughput"))


def _sample(model, n_hops, n=20_000, seed=1, **kwargs):
    rng = np.random.default_rng(seed)
    return model.sample(rng, n_hops, n=n, **kwargs)


class TestBasicProperties:
    def test_all_samples_positive(self, model):
        assert (_sample(model, 5) > 0).all()

    def test_deterministic_given_seed(self, model):
        a = _sample(model, 5, n=100, seed=7)
        b = _sample(model, 5, n=100, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_sample_one_matches_vector_path(self, model):
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        scalar = model.sample_one(rng_a, 5, t=10.0)
        vector = model.sample(rng_b, 5, t=10.0, n=1)[0]
        assert scalar == vector

    def test_rejects_bad_arguments(self, model):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            model.sample(rng, 5, n=0)
        with pytest.raises(ValueError):
            model.sample(rng, -1)


class TestShape:
    def test_more_hops_means_higher_median(self, model):
        p50_1 = np.median(_sample(model, 1))
        p50_5 = np.median(_sample(model, 5))
        assert p50_5 > p50_1
        # The gap is tens of microseconds, not milliseconds (§4.1).
        assert 10e-6 < p50_5 - p50_1 < 200e-6

    def test_intra_pod_median_near_paper_value(self, model):
        # Paper: DC1 intra-pod P50 = 216 us.  Allow a generous band.
        p50 = np.median(_sample(model, 1, n=50_000))
        assert 150e-6 < p50 < 320e-6

    def test_p99_in_milliseconds_band(self, model):
        # Paper: inter-pod P99 = 1.34 ms for DC1.
        p99 = np.percentile(_sample(model, 5, n=200_000), 99)
        assert 0.5e-3 < p99 < 4e-3

    def test_heavy_tail_exists(self, model):
        rtts = _sample(model, 5, n=400_000)
        p999 = np.percentile(rtts, 99.9)
        p50 = np.median(rtts)
        # P99.9 is tens of ms while P50 is hundreds of us: ratio >> 10.
        assert p999 / p50 > 10

    def test_wan_rtt_shifts_distribution(self, model):
        base = np.median(_sample(model, 8))
        wan = np.median(_sample(model, 8, wan_rtt=0.04))
        assert wan == pytest.approx(base + 0.04, rel=0.2)

    def test_payload_adds_latency(self, model):
        plain = np.median(_sample(model, 5, n=50_000))
        payload = np.median(_sample(model, 5, n=50_000, payload_bytes=1000))
        assert payload > plain
        # Figure 4(d): P50 gap is ~58 us; stay in the tens-of-us ballpark.
        assert 20e-6 < payload - plain < 300e-6

    def test_payload_widens_the_p99_gap(self, model):
        plain = _sample(model, 5, n=200_000)
        payload = _sample(model, 5, n=200_000, payload_bytes=1000, seed=2)
        gap_p50 = np.median(payload) - np.median(plain)
        gap_p99 = np.percentile(payload, 99) - np.percentile(plain, 99)
        assert gap_p99 > gap_p50

    def test_zero_hops_is_host_only(self, model):
        rtts = _sample(model, 0, n=10_000)
        assert np.median(rtts) == pytest.approx(
            model.profile.host_median_s, rel=0.25
        )


class TestProfileContrast:
    def test_throughput_dc_has_heavier_tail_than_interactive(self):
        # Figure 4(b): DC1 >> DC2 at P99.9.
        rng = np.random.default_rng(11)
        dc1 = LatencyModel(profile_for("throughput")).sample(rng, 5, n=500_000)
        dc2 = LatencyModel(profile_for("interactive")).sample(rng, 5, n=500_000)
        assert np.percentile(dc1, 99.9) > 1.4 * np.percentile(dc2, 99.9)

    def test_profiles_similar_at_median(self):
        # Figure 4(a): below P90 the two DCs look alike.
        rng = np.random.default_rng(12)
        dc1 = LatencyModel(profile_for("throughput")).sample(rng, 5, n=100_000)
        dc2 = LatencyModel(profile_for("interactive")).sample(rng, 5, n=100_000)
        assert np.median(dc1) == pytest.approx(np.median(dc2), rel=0.3)

    def test_sync_window_raises_burst_latency(self):
        profile = profile_for("service-sync")
        model = LatencyModel(profile)
        rng = np.random.default_rng(13)
        # t=0 is inside the sync window; pick a quiet t outside it.
        in_sync = model.sample(rng, 5, t=60.0, n=200_000)
        quiet = model.sample(rng, 5, t=profile.sync_duration_s + 3600.0, n=200_000)
        assert np.percentile(in_sync, 99) > np.percentile(quiet, 99)
