"""Tests for the Table-1-calibrated baseline drop model."""

import dataclasses

import pytest

from repro.netsim.addressing import FiveTuple
from repro.netsim.drops import DropBudget, DropModel
from repro.netsim.routing import Router
from repro.netsim.topology import MultiDCTopology, TopologySpec
from repro.netsim.workload import PROFILES, profile_for


@pytest.fixture(scope="module")
def multi():
    return MultiDCTopology.single(TopologySpec())


@pytest.fixture(scope="module")
def router(multi):
    return Router(multi)


def _paths(multi, router, src, dst):
    flow = FiveTuple(src.ip, 50_000, dst.ip, 81)
    return router.path(src, dst, flow), router.path(dst, src, flow.reversed())


class TestDropBudget:
    def test_budget_components_positive(self):
        for name, profile in PROFILES.items():
            budget = DropBudget.from_profile(profile)
            assert budget.host_side > 0, name
            assert budget.tor > 0, name
            assert budget.leaf > 0, name
            assert budget.spine > 0, name

    def test_infeasible_targets_rejected(self):
        profile = profile_for("throughput")
        # Inter barely above intra leaves no fabric budget.
        bad = dataclasses.replace(
            profile, intra_pod_drop=5e-5, inter_pod_drop=5.5e-5
        )
        with pytest.raises(ValueError):
            DropBudget.from_profile(bad)

    def test_leaf_gets_larger_share_than_spine(self):
        budget = DropBudget.from_profile(profile_for("throughput"))
        assert budget.leaf * 2 > budget.spine  # two leaf traversals dominate


class TestCalibration:
    @pytest.mark.parametrize(
        "profile_name",
        ["dc1-us-west", "dc2-us-central", "dc3-us-east", "dc4-europe", "dc5-asia"],
    )
    def test_attempt_drop_matches_targets(self, multi, router, profile_name):
        """The analytic per-attempt drop equals the Table 1 target."""
        profile = profile_for(profile_name)
        model = DropModel(profile)
        dc = multi.dc(0)

        intra_fwd, intra_rev = _paths(multi, router, *dc.servers_in_pod(0)[:2])
        intra = model.attempt_drop_prob(intra_fwd, intra_rev)
        assert intra == pytest.approx(profile.intra_pod_drop, rel=0.01)

        a = dc.servers_in_podset(0)[0]
        b = dc.servers_in_podset(1)[0]
        inter_fwd, inter_rev = _paths(multi, router, a, b)
        inter = model.attempt_drop_prob(inter_fwd, inter_rev)
        assert inter == pytest.approx(profile.inter_pod_drop, rel=0.01)

    def test_inter_pod_exceeds_intra_pod(self, multi, router):
        """Table 1: 'most of the packet drops happen in the network'."""
        model = DropModel(profile_for("throughput"))
        dc = multi.dc(0)
        intra = model.attempt_drop_prob(
            *_paths(multi, router, *dc.servers_in_pod(0)[:2])
        )
        inter = model.attempt_drop_prob(
            *_paths(
                multi,
                router,
                dc.servers_in_podset(0)[0],
                dc.servers_in_podset(1)[0],
            )
        )
        assert inter > 2 * intra

    def test_intra_podset_between_intra_and_inter(self, multi, router):
        model = DropModel(profile_for("throughput"))
        dc = multi.dc(0)
        intra_pod = model.attempt_drop_prob(
            *_paths(multi, router, *dc.servers_in_pod(0)[:2])
        )
        intra_podset = model.attempt_drop_prob(
            *_paths(
                multi, router, dc.servers_in_pod(0)[0], dc.servers_in_pod(1)[0]
            )
        )
        cross_podset = model.attempt_drop_prob(
            *_paths(
                multi,
                router,
                dc.servers_in_podset(0)[0],
                dc.servers_in_podset(1)[0],
            )
        )
        assert intra_pod < intra_podset < cross_podset

    def test_direction_drop_symmetrical_for_same_scope(self, multi, router):
        model = DropModel(profile_for("throughput"))
        dc = multi.dc(0)
        fwd, rev = _paths(multi, router, *dc.servers_in_pod(0)[:2])
        assert model.direction_drop_prob(fwd) == pytest.approx(
            model.direction_drop_prob(rev)
        )

    def test_hop_drop_prob_rejects_server_kind(self):
        from repro.netsim.devices import DeviceKind

        model = DropModel(profile_for("throughput"))
        with pytest.raises(ValueError):
            model.hop_drop_prob(DeviceKind.SERVER)

    def test_wan_adds_drop_probability(self):
        multi = MultiDCTopology(
            [
                TopologySpec(name="w", region="us-west"),
                TopologySpec(name="e", region="europe"),
            ]
        )
        router = Router(multi)
        model = DropModel(profile_for("throughput"))
        a = multi.dc(0).servers[0]
        b = multi.dc(1).servers[0]
        inter_dc = model.attempt_drop_prob(*_paths(multi, router, a, b))
        c = multi.dc(0).servers_in_podset(1)[0]
        intra_dc = model.attempt_drop_prob(*_paths(multi, router, a, c))
        assert inter_dc > intra_dc
