"""Tests for TCP traceroute and drop localization."""

import pytest

from repro.netsim.fabric import Fabric
from repro.netsim.faults import SilentRandomDrop
from repro.netsim.topology import TopologySpec
from repro.netsim.traceroute import localize_drop, tcp_traceroute


@pytest.fixture()
def fabric():
    return Fabric.single_dc(TopologySpec(), seed=21)


def _cross_podset_pair(fabric):
    dc = fabric.topology.dc(0)
    return dc.servers_in_podset(0)[0], dc.servers_in_podset(1)[0]


class TestTraceroute:
    def test_healthy_path_has_low_loss_everywhere(self, fabric):
        a, b = _cross_podset_pair(fabric)
        result = tcp_traceroute(fabric, a, b, probes_per_hop=200)
        assert len(result.hops) == 5
        assert all(hop.loss_rate < 0.02 for hop in result.hops)
        assert localize_drop(result) is None

    def test_hop_order_matches_clos_tiers(self, fabric):
        a, b = _cross_podset_pair(fabric)
        result = tcp_traceroute(fabric, a, b)
        ids = [hop.device_id for hop in result.hops]
        assert "tor" in ids[0] and "leaf" in ids[1] and "spine" in ids[2]
        assert [hop.ttl for hop in result.hops] == [1, 2, 3, 4, 5]

    def test_pinned_port_gives_stable_path(self, fabric):
        a, b = _cross_podset_pair(fabric)
        first = tcp_traceroute(fabric, a, b, probes_per_hop=1)
        second = tcp_traceroute(fabric, a, b, probes_per_hop=1)
        assert [h.device_id for h in first.hops] == [
            h.device_id for h in second.hops
        ]

    def test_silent_dropper_localized_exactly(self, fabric):
        a, b = _cross_podset_pair(fabric)
        # Find the spine this pinned flow crosses, then poison it.
        path = tcp_traceroute(fabric, a, b, probes_per_hop=1)
        spine_id = path.hops[2].device_id
        fabric.faults.inject(SilentRandomDrop(switch_id=spine_id, drop_prob=0.05))
        result = tcp_traceroute(fabric, a, b, probes_per_hop=2000)
        assert localize_drop(result) == spine_id

    def test_loss_persists_downstream_of_dropper(self, fabric):
        a, b = _cross_podset_pair(fabric)
        path = tcp_traceroute(fabric, a, b, probes_per_hop=1)
        leaf_id = path.hops[1].device_id
        fabric.faults.inject(SilentRandomDrop(switch_id=leaf_id, drop_prob=0.10))
        result = tcp_traceroute(fabric, a, b, probes_per_hop=1500)
        losses = result.loss_profile()
        assert losses[0] < 0.02  # ToR before the dropper is clean
        assert all(loss > 0.05 for loss in losses[1:])

    def test_no_route_returns_empty_hops(self, fabric):
        dc = fabric.topology.dc(0)
        for leaf in dc.leaves_of(0):
            leaf.bring_down()
        a = dc.servers_in_pod(0)[0]
        b = dc.servers_in_pod(1)[0]
        result = tcp_traceroute(fabric, a, b)
        assert result.hops == []
        assert localize_drop(result) is None

    def test_accepts_device_id_strings(self, fabric):
        a, b = _cross_podset_pair(fabric)
        result = tcp_traceroute(fabric, a.device_id, b.device_id, probes_per_hop=10)
        assert result.src == a.device_id
