"""Tests for scheduled fault injection."""

import pytest

from repro.netsim.fabric import Fabric
from repro.netsim.faultschedule import FaultSchedule, ScheduledIncident
from repro.netsim.simclock import EventQueue, SimClock
from repro.netsim.topology import TopologySpec


@pytest.fixture()
def world():
    fabric = Fabric.single_dc(TopologySpec(), seed=5)
    queue = EventQueue(SimClock())
    return fabric, queue, FaultSchedule(fabric, queue)


class TestScheduling:
    def test_incident_starts_at_time(self, world):
        fabric, queue, schedule = world
        incident = schedule.add("silent-spine", start_t=100.0)
        queue.run_until(99.0)
        assert not incident.started
        assert not fabric.faults.has_faults()
        queue.run_until(100.0)
        assert incident.started
        assert fabric.faults.has_faults()

    def test_incident_ends_at_time(self, world):
        fabric, queue, schedule = world
        incident = schedule.add("silent-spine", start_t=100.0, end_t=200.0)
        queue.run_until(150.0)
        assert fabric.faults.has_faults()
        queue.run_until(200.0)
        assert incident.ended
        assert not fabric.faults.has_faults()

    def test_open_ended_incident_persists(self, world):
        fabric, queue, schedule = world
        schedule.add("tor-blackhole", start_t=10.0)
        queue.run_until(10_000.0)
        assert fabric.faults.has_faults()

    def test_kwargs_forwarded_to_scenario(self, world):
        fabric, queue, schedule = world
        incident = schedule.add("tor-blackhole", start_t=1.0, pod=3)
        queue.run_until(1.0)
        assert incident.applied.ground_truth_devices == [
            fabric.topology.dc(0).tors[3].device_id
        ]

    def test_podset_scenario_reverts_power(self, world):
        fabric, queue, schedule = world
        schedule.add("podset-down", start_t=5.0, end_t=10.0, podset=1)
        queue.run_until(7.0)
        dc = fabric.topology.dc(0)
        assert all(not s.is_up for s in dc.servers_in_podset(1))
        queue.run_until(10.0)
        assert all(s.is_up for s in dc.servers_in_podset(1))

    def test_validation(self):
        with pytest.raises(ValueError):
            ScheduledIncident("x", start_t=-1.0, end_t=None)
        with pytest.raises(ValueError):
            ScheduledIncident("x", start_t=10.0, end_t=10.0)


class TestBookkeeping:
    def test_active_at(self, world):
        fabric, queue, schedule = world
        schedule.add("silent-spine", start_t=100.0, end_t=200.0)
        schedule.add("tor-blackhole", start_t=150.0)
        assert schedule.active_at(50.0) == []
        assert len(schedule.active_at(150.0)) == 2
        assert [i.scenario_name for i in schedule.active_at(250.0)] == [
            "tor-blackhole"
        ]

    def test_ground_truth_devices(self, world):
        fabric, queue, schedule = world
        schedule.add("silent-spine", start_t=10.0, spine=2)
        queue.run_until(10.0)
        devices = schedule.ground_truth_devices(t=20.0)
        assert devices == {fabric.topology.dc(0).spines[2].device_id}

    def test_ground_truth_empty_before_start(self, world):
        fabric, queue, schedule = world
        schedule.add("silent-spine", start_t=100.0)
        assert schedule.ground_truth_devices(t=5.0) == set()
