"""Runtime topology growth: a new podset lands and Pingmesh absorbs it."""

import pytest

from repro.core.agent.agent import AgentConfig
from repro.core.dsa.pipeline import DsaConfig
from repro.core.system import PingmeshSystem, PingmeshSystemConfig
from repro.netsim.topology import MultiDCTopology, TopologySpec


class TestTopologyGrowth:
    def test_add_podset_extends_the_clos(self):
        topo = MultiDCTopology.single(TopologySpec())
        dc = topo.dc(0)
        before_servers = dc.spec.n_servers
        before_pods = dc.spec.n_pods
        new_servers = dc.add_podset()
        assert dc.spec.n_podsets == 3
        assert dc.spec.n_pods == before_pods + dc.spec.pods_per_podset
        assert len(dc.servers) == before_servers + len(new_servers)
        # New devices resolve through the usual lookups.
        for server in new_servers:
            assert topo.server(server.device_id) is server
            assert dc.server_by_ip(server.ip) is server
            assert dc.tor_of(server).pod_index == server.pod_index
        # IPs stay unique fleet-wide.
        ips = {server.ip for server in dc.servers}
        assert len(ips) == len(dc.servers)

    def test_new_podset_is_routable(self):
        from repro.netsim.fabric import Fabric

        topo = MultiDCTopology.single(TopologySpec())
        fabric = Fabric(topo, seed=1)
        new_servers = topo.dc(0).add_podset()
        old = topo.dc(0).servers[0]
        result = fabric.probe(old, new_servers[0])
        assert result.success
        assert result.scope.value == "intra-dc"

    def test_system_absorbs_growth_end_to_end(self):
        system = PingmeshSystem(
            PingmeshSystemConfig(
                specs=(TopologySpec(),),
                seed=12,
                dsa=DsaConfig(ingestion_delay_s=0.0, near_real_time_period_s=300.0),
                agent=AgentConfig(upload_period_s=120.0),
            )
        )
        system.run_for(200.0)
        old_generation = system.controller.generation
        old_agent = next(iter(system.agents.values()))
        old_peer_count = len(old_agent.pinglist)

        new_ids = system.add_podset()
        assert system.controller.generation == old_generation + 1
        assert all(server_id in system.agents for server_id in new_ids)

        # Existing agents pick up the wider ToR-level graph at refresh.
        old_agent.refresh_pinglist(system.clock.now)
        assert len(old_agent.pinglist) > old_peer_count

        system.run_for(400.0)
        new_agent = system.agents[new_ids[0]]
        assert new_agent.probes_sent > 0
        # New servers' data flows into the same analysis stream.
        new_rows = [
            row
            for row in system.store.read("pingmesh/latency")
            if row["src"] == new_ids[0]
        ]
        assert new_rows

    def test_growth_requires_started_system(self):
        system = PingmeshSystem(
            PingmeshSystemConfig(specs=(TopologySpec(),), seed=1)
        )
        with pytest.raises(RuntimeError):
            system.add_podset()

    def test_heatmap_covers_the_new_pods(self):
        system = PingmeshSystem(
            PingmeshSystemConfig(
                specs=(TopologySpec(),),
                seed=14,
                dsa=DsaConfig(ingestion_delay_s=0.0, near_real_time_period_s=300.0),
                agent=AgentConfig(upload_period_s=120.0),
            )
        )
        system.run_for(100.0)
        system.add_podset()
        system.run_for(650.0)
        heatmap = system.dsa.latest_heatmap(0, t=system.clock.now)
        assert heatmap.n_pods == system.topology.dc(0).spec.n_pods
        # The new pods' cells carry data (their agents probe + are probed).
        new_pod = heatmap.n_pods - 1
        import numpy as np

        assert not np.isnan(heatmap.p99_us[new_pod, :]).all()
