"""End-to-end QoS monitoring (§6.2).

"network QoS was introduced into our data center which differentiates high
priority and low priority packets based on DSCP ... we extended the
Pingmesh Generator to generate pinglists for both high and low priority
classes.  In this case, we did need a simple configuration change of the
Pingmesh Agent to let it listen to an additional TCP port."
"""

import numpy as np
import pytest

from repro.core.agent.agent import AgentConfig
from repro.core.controller.generator import GeneratorConfig
from repro.core.dsa.pipeline import DsaConfig
from repro.core.system import PingmeshSystem, PingmeshSystemConfig
from repro.cosmos.scope import RowSet, agg
from repro.netsim.faults import CongestionFault
from repro.netsim.topology import TopologySpec

LOW_PRIORITY_PORT = 82  # PingParameters.tcp_port_low default


@pytest.fixture()
def system():
    return PingmeshSystem(
        PingmeshSystemConfig(
            specs=(TopologySpec(),),
            seed=6,
            generator=GeneratorConfig(enable_qos_low=True),
            dsa=DsaConfig(ingestion_delay_s=0.0, near_real_time_period_s=300.0),
            agent=AgentConfig(upload_period_s=120.0),
        )
    )


def _qos_p99(system, since_t=0.0):
    rows = RowSet(
        row
        for row in system.store.read("pingmesh/latency")
        if row["success"] and row["purpose"] == "tor-level" and row["t"] >= since_t
    )
    out = (
        rows.group_by("qos")
        .aggregate(p99_us=agg.percentile("rtt_us", 99), n=agg.count())
        .output()
    )
    return {row["qos"]: row for row in out}


class TestQosMonitoring:
    def test_both_classes_probed(self, system):
        system.run_for(300.0)
        stats = _qos_p99(system)
        assert set(stats) == {"high", "low"}
        assert stats["low"]["n"] > 0

    def test_classes_agree_on_healthy_network(self, system):
        system.run_for(300.0)
        stats = _qos_p99(system)
        assert stats["low"]["p99_us"] == pytest.approx(
            stats["high"]["p99_us"], rel=0.5
        )

    def test_low_class_suffers_first_under_congestion(self, system):
        """QoS-aware congestion: the low-priority probes see it, the
        high-priority ones barely do — the signal QoS monitoring exists
        to provide."""
        system.run_for(200.0)
        for spine in system.topology.dc(0).spines:
            system.fabric.faults.inject(
                CongestionFault(
                    switch_id=spine.device_id,
                    drop_prob=0.0,
                    extra_queue_s=400e-6,
                    low_priority_port=LOW_PRIORITY_PORT,
                    low_priority_multiplier=10.0,
                )
            )
        system.run_for(400.0)
        stats = _qos_p99(system, since_t=200.0)
        assert stats["low"]["p99_us"] > 1.5 * stats["high"]["p99_us"]

    def test_low_class_uses_the_low_port(self, system):
        pinglist = system.controller.get_pinglist("dc0/ps0/pod0/srv0")
        assert pinglist.parameters.port_for("low") == LOW_PRIORITY_PORT
        low_entries = [e for e in pinglist.entries if e.qos == "low"]
        assert low_entries
