"""End-to-end incident drills: the §5 and Figure 8 scenarios."""

import pytest

from repro.core.agent.agent import AgentConfig
from repro.core.dsa.pipeline import DsaConfig
from repro.core.system import PingmeshSystem, PingmeshSystemConfig
from repro.netsim.faults import (
    BlackholeType1,
    CongestionFault,
    SilentRandomDrop,
    podset_down,
)
from repro.netsim.topology import TopologySpec

FAST_DSA = DsaConfig(
    ingestion_delay_s=0.0,
    near_real_time_period_s=300.0,
    hourly_period_s=900.0,
    daily_period_s=900.0,
)


def _build(seed=2):
    config = PingmeshSystemConfig(
        specs=(TopologySpec(),),
        seed=seed,
        dsa=FAST_DSA,
        agent=AgentConfig(upload_period_s=120.0),
    )
    system = PingmeshSystem(config)
    return system


class TestBlackholeIncident:
    def test_detect_and_auto_repair(self):
        """§5.1 end-to-end: inject a type-1 black-hole at a ToR, let the
        daily job detect it, the DM+RS reload the switch, and the fault
        clear."""
        system = _build()
        tor = system.topology.dc(0).tors[2]
        fault = system.fabric.faults.inject(
            BlackholeType1(switch_id=tor.device_id, fraction=0.6)
        )
        system.run_for(1000.0)  # daily job at t=900 detects; repairs drain
        assert any(
            report.tors_to_reload for report in system.dsa.blackhole_reports
        ), "detector never flagged the poisoned ToR"
        assert tor.reload_count == 1
        assert system.fabric.faults.faults_on(tor.device_id) == []

    def test_network_heals_after_repair(self):
        system = _build(seed=3)
        dc = system.topology.dc(0)
        tor = dc.tors[1]
        fault = BlackholeType1(switch_id=tor.device_id, fraction=0.6)
        system.fabric.faults.inject(fault)
        # Find an intra-pod pair whose TCAM entry is corrupted.
        servers = dc.servers_in_pod(1)
        pair = next(
            (a, b)
            for a in servers
            for b in servers
            if a is not b and fault.matches(a.ip, b.ip)
        )
        assert not system.fabric.probe(*pair).success
        system.run_for(1000.0)
        assert tor.reload_count >= 1
        assert system.fabric.probe(*pair).success


class TestSilentDropIncident:
    def test_detect_localize_isolate(self):
        """§5.2 end-to-end: a spine drops 5% of packets silently; the
        10-min watch detects, traceroute localizes, RS isolates it."""
        system = _build(seed=4)
        spine = system.topology.dc(0).spines[1]
        system.fabric.faults.inject(
            SilentRandomDrop(switch_id=spine.device_id, drop_prob=0.05)
        )
        system.run_for(700.0)  # two near-real-time jobs
        incidents = system.dsa.incidents
        assert incidents, "no silent-drop incident detected"
        localized = {incident.localized_switch for incident in incidents}
        assert spine.device_id in localized
        assert not spine.is_up  # isolated by the RMA path

    def test_snmp_counters_stayed_clean(self):
        """The defining property: the dropping switch's SNMP looks fine."""
        system = _build(seed=5)
        spine = system.topology.dc(0).spines[0]
        system.fabric.faults.inject(
            SilentRandomDrop(switch_id=spine.device_id, drop_prob=0.05)
        )
        system.run_for(400.0)
        visible = spine.counters.visible()
        assert visible["input_discards"] == 0
        assert visible["output_discards"] == 0
        assert spine.counters.silent_drops > 0  # ground truth disagrees

    def test_drop_rate_recovers_after_isolation(self):
        system = _build(seed=6)
        spine = system.topology.dc(0).spines[2]
        system.fabric.faults.inject(
            SilentRandomDrop(switch_id=spine.device_id, drop_prob=0.08)
        )
        system.run_for(700.0)
        assert not spine.is_up
        # After isolation, fresh cross-podset probes avoid the dropper.
        dc = system.topology.dc(0)
        a = dc.servers_in_podset(0)[0]
        b = dc.servers_in_podset(1)[0]
        batch = system.fabric.batch_probe(a, b, 20_000)
        assert batch.success.mean() > 0.999


class TestFigure8Patterns:
    def test_podset_down_white_cross(self):
        system = _build(seed=7)
        system.run_for(350.0)  # one normal window first
        podset_down(system.topology, 0, 1)
        system.run_for(600.0)
        pattern = system.dsa.latest_pattern(0)
        assert pattern["pattern"] == "podset-down"
        assert pattern["affected_podsets"] == [1]

    def test_podset_failure_red_cross(self):
        system = _build(seed=8)
        for leaf in system.topology.dc(0).leaves_of(0):
            system.fabric.faults.inject(
                CongestionFault(
                    switch_id=leaf.device_id, drop_prob=0.0, extra_queue_s=7e-3
                )
            )
        system.run_for(650.0)
        pattern = system.dsa.latest_pattern(0)
        assert pattern["pattern"] == "podset-failure"
        assert pattern["affected_podsets"] == [0]

    def test_spine_failure_green_diagonal(self):
        system = _build(seed=9)
        for spine in system.topology.dc(0).spines:
            system.fabric.faults.inject(
                CongestionFault(
                    switch_id=spine.device_id, drop_prob=0.0, extra_queue_s=7e-3
                )
            )
        system.run_for(650.0)
        pattern = system.dsa.latest_pattern(0)
        assert pattern["pattern"] == "spine-failure"

    def test_latency_alerts_fire_during_spine_congestion(self):
        system = _build(seed=10)
        for spine in system.topology.dc(0).spines:
            system.fabric.faults.inject(
                CongestionFault(
                    switch_id=spine.device_id, drop_prob=0.0, extra_queue_s=7e-3
                )
            )
        system.run_for(1000.0)
        assert system.is_network_issue() is True
        metrics = {alert.metric for alert in system.alerts()}
        assert "p99_us" in metrics


class TestInterDc:
    def test_two_dc_system_probes_across_wan(self):
        config = PingmeshSystemConfig(
            specs=(
                TopologySpec(name="dc-w", region="us-west"),
                TopologySpec(
                    name="dc-e", region="europe", profile_name="interactive"
                ),
            ),
            seed=11,
            dsa=FAST_DSA,
            agent=AgentConfig(upload_period_s=120.0),
        )
        system = PingmeshSystem(config)
        system.run_for(400.0)
        inter_dc_records = [
            row
            for row in system.store.read("pingmesh/latency")
            if row["src_dc"] != row["dst_dc"]
        ]
        assert inter_dc_records
        # WAN RTT dominates: inter-DC latency is tens of milliseconds.
        assert all(row["rtt_us"] > 10_000 for row in inter_dc_records if row["success"])
