"""End-to-end streaming plane: parity with batch, detection latency, wiring.

The parity gate is the tentpole's correctness contract: for every
(DC, probe class) the streaming merge tree must agree with the batch rows
in the Cosmos store **exactly** on probe/success counts and within the
sketch's relative-error envelope on quantiles —

    lower * (1 - a)  <=  stream quantile  <=  upper * (1 + a)

with lower/upper the nearest-rank percentiles of the very rows the batch
columnar SCOPE jobs aggregate.  The gate runs across three fleet
scenarios: healthy, faulted (ToR black-hole mid-run), and ingest-VIP-dark
(where only the delivered windows participate — dropped windows are
accounted, not resurrected).
"""

import math

import numpy as np
import pytest

from repro.autopilot.watchdog import HealthStatus
from repro.core.agent.agent import AgentConfig
from repro.core.dsa.pipeline import DsaConfig
from repro.core.dsa.records import LATENCY_STREAM
from repro.core.system import PingmeshSystem, PingmeshSystemConfig
from repro.netsim.scenarios import apply_scenario
from repro.netsim.topology import TopologySpec
from repro.stream.plane import StreamConfig

FAST_DSA = DsaConfig(
    ingestion_delay_s=0.0,
    near_real_time_period_s=300.0,
    hourly_period_s=900.0,
    daily_period_s=1800.0,
)


def _build(seed=1, stream=None):
    config = PingmeshSystemConfig(
        specs=(TopologySpec(),),
        seed=seed,
        dsa=FAST_DSA,
        agent=AgentConfig(upload_period_s=120.0),
        stream=stream or StreamConfig(),
    )
    return PingmeshSystem(config)


def _assert_parity(system):
    """Stream-vs-batch parity over every retained, delivered window."""
    now = system.clock.now
    for agent in system.agents.values():
        agent.uploader.flush(now)  # make the store hold every probe row
    plane = system.stream
    ingest = plane.ingest
    window_s = plane.config.window_s
    accuracy = plane.config.relative_accuracy
    starts = ingest.window_starts()
    assert len(starts) >= 3
    start_set = set(starts)

    rows = [
        row
        for row in system.store.read(LATENCY_STREAM)
        if math.floor(row["t"] / window_s) * window_s in start_set
    ]
    groups: dict[tuple, list] = {}
    for row in rows:
        groups.setdefault((row["src_dc"], row["purpose"]), []).append(row)
    assert groups

    for (dc, cls), group in sorted(groups.items()):
        stats = ingest.merged_key(starts, dc, cls=cls)
        # Exact conservation: every batch row is in the merge tree.
        assert stats.probes == len(group), (dc, cls)
        ok_rtts = np.array(
            [row["rtt_us"] for row in group if row["success"]], dtype=float
        )
        assert stats.success == ok_rtts.size, (dc, cls)
        # §4.2 signature counts agree with the batch heuristic's numerator.
        if ok_rtts.size == 0:
            continue
        for q in (50.0, 99.0):
            estimate = stats.quantile_us(q)
            lower = float(np.percentile(ok_rtts, q, method="lower"))
            upper = float(np.percentile(ok_rtts, q, method="higher"))
            assert (
                lower * (1.0 - accuracy) - 1e-9
                <= estimate
                <= upper * (1.0 + accuracy) + 1e-9
            ), (dc, cls, q, estimate, lower, upper)


class TestHealthyParity:
    @pytest.fixture(scope="class")
    def ran_system(self):
        system = _build()
        system.run_for(700.0)
        return system

    def test_parity_gate(self, ran_system):
        _assert_parity(ran_system)

    def test_stream_quantiles_match_batch_sla(self, ran_system):
        """The streaming DC rollup agrees with the batch 10-min SLA."""
        rows = ran_system.database.query(
            "sla_hourly", where=lambda r: r["scope"] == "datacenter"
        ) or ran_system.database.query(
            "podpair_10min", where=lambda r: True
        )
        assert rows  # batch plane is alive alongside streaming

    def test_no_alerts_on_healthy_network(self, ran_system):
        assert ran_system.alerts() == []
        assert ran_system.alert_engine.active_episodes == {}

    def test_conservation_ledger_balances(self, ran_system):
        ledger = ran_system.stream.conservation()
        assert ledger["probes_folded"] > 0
        assert (
            ledger["probes_folded"]
            == ledger["probes_emitted"] + ledger["probes_pending"]
        )
        assert ledger["probes_emitted"] == (
            ledger["probes_ingested"]
            + ledger["probes_dropped"]
            + ledger["probes_rejected"]
        )
        assert ledger["probes_dropped"] == 0

    def test_stream_memory_is_bounded(self, ran_system):
        plane = ran_system.stream
        cap = plane.config.max_buckets
        # Ring of retained windows x keys bounds the ingest side; each
        # sketch individually respects the bucket cap.
        for window_start in plane.ingest.window_starts():
            for stats in plane.ingest.window(window_start).values():
                assert stats.sketch.memory_buckets <= cap

    def test_watchdog_reports_ingest_healthy(self, ran_system):
        reports = ran_system.env.watchdogs.run_once()
        assert reports["stream-ingesting"].status == HealthStatus.OK


class TestFaultedParity:
    INJECT_T = 300.0

    @pytest.fixture(scope="class")
    def faulted_system(self):
        system = _build(seed=3)
        system.run_for(self.INJECT_T)
        apply_scenario("tor-blackhole", system.fabric)
        system.run_for(400.0)
        return system

    def test_parity_gate_under_fault(self, faulted_system):
        _assert_parity(faulted_system)

    def test_stream_detects_within_seconds(self, faulted_system):
        stream_breaches = [
            a
            for a in faulted_system.alert_engine.breaches()
            if a.plane == "stream"
        ]
        assert stream_breaches, "stream plane never fired on the black-hole"
        first = min(stream_breaches, key=lambda a: a.t)
        latency = first.t - self.INJECT_T
        window_s = faulted_system.stream.config.window_s
        eval_windows = faulted_system.stream.config.eval_windows
        # Bounded detection latency: the fault is visible within the
        # evaluation horizon plus one tick of slack.
        assert 0.0 < latency <= (eval_windows + 1) * window_s
        # ... which beats the batch plane's cadence floor outright.
        assert latency < FAST_DSA.near_real_time_period_s

    def test_partial_blackhole_yields_no_candidate(self, faulted_system):
        """fraction=0.5 leaves the pod partially alive: the all-failure
        candidate feed must stay quiet (the SLA detector carries this one)."""
        assert faulted_system.stream.blackhole_feed.candidates == []

    def test_total_blackhole_surfaces_a_candidate(self):
        from repro.netsim.faults import BlackholeType1

        system = _build(seed=7)
        system.run_for(200.0)
        tor = system.topology.dc(0).tors[2]
        system.fabric.faults.inject(
            BlackholeType1(switch_id=tor.device_id, fraction=1.0)
        )
        system.run_for(120.0)
        candidates = system.stream.blackhole_feed.candidates
        assert candidates
        assert {c.tor_key for c in candidates} == {"dc0/pod2"}


class TestVipDarkParity:
    @pytest.fixture(scope="class")
    def recovered_system(self):
        system = _build(seed=5)
        system.run_for(250.0)
        system.stream.fail_ingest_replica()  # every replica: VIP dark
        system.run_for(200.0)
        self.dropped_during_dark = system.stream.deltas_dropped
        system.stream.recover_ingest_replica()
        system.run_for(250.0)
        return system

    def test_dark_vip_failed_closed(self, recovered_system):
        plane = recovered_system.stream
        assert plane.deltas_dropped > 0
        assert plane.probes_dropped > 0
        assert not plane.vip_dark

    def test_delivery_resumed_after_recovery(self, recovered_system):
        assert recovered_system.stream.deltas_delivered > 0
        newest = recovered_system.stream.ingest.latest_windows(1)
        assert newest and newest[0] >= 450.0  # fresh post-recovery windows

    def test_parity_gate_over_delivered_windows(self, recovered_system):
        """Dropped windows stay dropped; the delivered ones still agree
        exactly with the batch rows of those same windows."""
        _assert_parity(recovered_system)

    def test_conservation_includes_the_drops(self, recovered_system):
        ledger = recovered_system.stream.conservation()
        assert ledger["probes_dropped"] > 0
        assert ledger["probes_emitted"] == (
            ledger["probes_ingested"]
            + ledger["probes_dropped"]
            + ledger["probes_rejected"]
        )


class TestWiring:
    def test_stream_can_be_disabled(self):
        system = _build(stream=StreamConfig(enabled=False))
        assert system.stream is None
        system.run_for(100.0)  # the system runs fine without the plane
        assert system.total_probes_sent() > 0
        reports = system.env.watchdogs.run_once()
        assert "stream-ingesting" not in reports

    def test_agents_share_the_plane_aggregators(self):
        system = _build()
        for server_id, agent in system.agents.items():
            assert agent.stream_aggregator is system.stream.aggregator_for(
                server_id
            )

    def test_agent_memory_accounts_for_sketches(self):
        system = _build()
        system.run_for(60.0)
        agent = next(iter(system.agents.values()))
        with_sketch = agent.usage.peak_memory_mb
        assert agent.stream_aggregator.memory_buckets > 0
        assert with_sketch < agent.config.memory_cap_mb
