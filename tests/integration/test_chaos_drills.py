"""The chaos drill tier: canned fault campaigns must run clean.

Every drill in ``repro.chaos.campaigns`` drives a full PingmeshSystem
through a scripted fault timeline with the invariant catalogue attached
(§3.4.2 safety limits, §3.5 watchdog latency, §4.2/§5 measurement honesty).
A drill "passes" when the campaign finishes with zero invariant violations
AND the campaign-specific behaviour (fail-closed plateau, accounted
discards, bounded restarts, ...) is visible in the report.
"""

from __future__ import annotations

import pytest

from repro.autopilot.watchdog import HealthStatus
from repro.chaos import CAMPAIGNS, build_campaign, run_campaign
from repro.core.controller.pinglist import Pinglist

ALL_CAMPAIGNS = sorted(CAMPAIGNS)


def _run(name: str, seed: int = 0, check_mode: str = "phase"):
    system, campaign, canned = build_campaign(name, seed=seed, check_mode=check_mode)
    report = campaign.run(canned.duration_s, phase_s=canned.phase_s)
    return system, report


@pytest.mark.parametrize("name", ALL_CAMPAIGNS)
def test_campaign_runs_clean(name):
    report = run_campaign(name, seed=0)
    report.assert_clean()
    assert report.probes_observed > 0
    assert report.events_run > 0


@pytest.mark.parametrize("name", ALL_CAMPAIGNS)
def test_campaign_is_deterministic(name):
    first = run_campaign(name, seed=7)
    second = run_campaign(name, seed=7)
    assert first.summary() == second.summary()
    assert first.phases == second.phases


def test_step_mode_agrees_with_phase_mode():
    # The cadence of checking must not change what the system does.
    phase = run_campaign("controller-flap", seed=0, check_mode="phase")
    step = run_campaign("controller-flap", seed=0, check_mode="step")
    step.assert_clean()
    assert [p.total_probes_sent for p in phase.phases] == [
        p.total_probes_sent for p in step.phases
    ]
    assert step.probes_observed == phase.probes_observed


def test_kill_switch_silences_then_resumes():
    system, report = _run("kill-switch")
    report.assert_clean()
    by_t = {phase.t: phase for phase in report.phases}
    # Once every agent has refreshed into the 404 (window starts at 180s,
    # refresh period 120s), the whole fleet is fail-closed and silent.
    # Their backoff retries keep hitting 404s until the files return at
    # 650s, so the plateau spans both mid-drill checkpoints.
    assert by_t[420.0].fail_closed_agents == len(system.agents)
    assert by_t[630.0].fail_closed_agents == len(system.agents)
    assert by_t[630.0].total_probes_sent == by_t[420.0].total_probes_sent
    # After the next refresh probing resumes, nobody needed a restart
    # ("Pingmesh stopped working ... after the Pinglist files were
    # regenerated, Pingmesh went back to work").
    assert by_t[840.0].total_probes_sent > by_t[630.0].total_probes_sent
    assert by_t[840.0].fail_closed_agents == 0
    assert not system.service_manager.restarts


def test_cosmos_blackout_discards_are_accounted():
    system, report = _run("cosmos-blackout")
    report.assert_clean()
    stats = [agent.uploader.stats for agent in system.agents.values()]
    # Every agent hit the dark Cosmos: retries spread over time, spooled
    # batches bounded, any exhausted batch discarded — never an unbounded
    # buffer, never a silent loss.
    assert all(s.upload_failures > 0 for s in stats)
    for agent in system.agents.values():
        s = agent.uploader.stats
        assert s.records_added == (
            s.records_uploaded
            + s.records_discarded
            + agent.uploader.buffered_records
            + agent.uploader.spooled_records
        )
    # The degradation is visible through the PA side channel too (§2.3):
    # watchdogs and dashboards see it even with the Cosmos path down.
    spooled = system.env.perfcounter.aggregate_latest(
        "upload_records_spooled", how="max"
    )
    assert spooled is not None and spooled > 0
    # Uploads resumed after the blackout lifted at 510s.  An agent whose
    # grown backoff window (cap 600s) reaches past the drill horizon may
    # not have landed records yet — but then its backlog must be sitting
    # in the spool awaiting replay, not lost.
    for agent in system.agents.values():
        if agent.uploader.stats.records_uploaded == 0:
            assert agent.uploader.spooled_records > 0
    assert sum(s.records_uploaded for s in stats) > 0


def test_memory_squeeze_kills_then_restarts_within_budget():
    system, report = _run("memory-squeeze")
    report.assert_clean()
    by_t = {phase.t: phase for phase in report.phases}
    # The squeeze (120s..330s) killed the victims at least once.
    assert by_t[330.0].terminated_agents > 0
    # The watchdog reported the breach (bounded-latency is an invariant;
    # here we check the ERROR actually landed in the history).
    assert any(
        r.name == "agents-within-budget" and r.status == HealthStatus.ERROR
        for r in system.env.watchdogs.error_history
    )
    # The Service Manager brought everyone back within its daily budget.
    assert by_t[780.0].terminated_agents == 0
    assert system.service_manager.restarts
    per_agent: dict[str, int] = {}
    for record in system.service_manager.restarts:
        per_agent[record.server_id] = per_agent.get(record.server_id, 0) + 1
    assert max(per_agent.values()) <= system.service_manager.max_restarts_per_day


def test_controller_blackout_recovery_serves_fresh_stamps():
    system, report = _run("controller-flap")
    report.assert_clean()
    # After recovery every replica serves the same generation with the
    # fleet's generation stamp — not a t=0 rebuild (the recover_replica bug).
    stamps = set()
    generations = set()
    for replica in system.controller.replicas.values():
        assert replica.up
        for xml in replica.files.values():
            pinglist = Pinglist.from_xml(xml)
            stamps.add(pinglist.generated_at)
            generations.add(pinglist.generation)
    assert len(stamps) == 1
    assert len(generations) == 1
    assert stamps.pop() == system.controller.last_generated_t


def test_podset_blackout_recovers_and_blames_nobody_innocent():
    system, report = _run("podset-blackout")
    report.assert_clean()
    by_t = {phase.t: phase for phase in report.phases}
    # Survivors kept measuring during the outage...
    assert by_t[540.0].total_probes_sent > by_t[120.0].total_probes_sent
    # ...and the downed half rejoined afterwards.
    assert by_t[780.0].total_probes_sent > by_t[540.0].total_probes_sent
    downed = {
        server.device_id
        for server in system.topology.dc(0).servers_in_podset(1)
    }
    for action in system.env.repair_service.actions:
        assert action.device_id in downed


def test_vip_dark_window_is_measured_not_suppressed():
    system, report = _run("blackhole-vip-dark")
    report.assert_clean()
    rows = [
        record
        for record in system.store.read("pingmesh/latency")
        if record.get("purpose") == "vip"
    ]
    assert rows, "vip probes must reach the store"
    dark = [r for r in rows if r.get("error") == "vip_down"]
    assert dark, "the dark-VIP window must be visible as vip_down rows"
    # All DIPs recovered: the newest vip rows succeed again.
    assert rows[-1]["success"]


def test_stream_blackout_fails_closed_then_resumes():
    system, report = _run("stream-blackout")
    report.assert_clean()
    plane = system.stream
    # The blackout (180s..480s) dropped deltas — counted, never buffered.
    assert plane.deltas_dropped > 0
    assert plane.probes_dropped > 0
    # The watchdog tripped while the VIP was dark...
    assert any(
        r.name == "stream-ingesting" and r.status == HealthStatus.ERROR
        for r in system.env.watchdogs.error_history
    )
    # ...and ingest resumed once the replicas returned: the newest
    # delivered window postdates the recovery at 480s.
    assert not plane.vip_dark
    newest = plane.ingest.latest_windows(1)
    assert newest and newest[0] >= 480.0
    assert plane.deltas_delivered > 0
    # The conservation ledger balances across the whole drill.
    ledger = plane.conservation()
    assert ledger["probes_emitted"] == (
        ledger["probes_ingested"]
        + ledger["probes_dropped"]
        + ledger["probes_rejected"]
    )
    # The batch plane never depended on the stream VIP: rows kept landing.
    assert system.store.stream("pingmesh/latency").record_count > 0


def test_campaign_summary_mentions_every_action():
    _system, report = _run("blackhole-vip-dark")
    text = report.summary()
    assert "scenario:tor-blackhole" in text
    assert "vip-blackout:search.vip" in text
    assert "all invariants held" in text
