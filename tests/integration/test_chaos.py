"""Chaos drills: random fault combinations must never break the system.

Pingmesh's value proposition is being trustworthy *during* incidents; these
tests throw randomized combinations of scenarios at a running deployment and
assert systemic invariants: nothing crashes, data keeps flowing from the
surviving parts, detectors only blame plausible devices, and the system
recovers when the faults clear.
"""

import pytest

from repro.core.agent.agent import AgentConfig
from repro.core.dsa.pipeline import DsaConfig
from repro.core.system import PingmeshSystem, PingmeshSystemConfig
from repro.netsim.scenarios import SCENARIOS, apply_scenario
from repro.netsim.topology import TopologySpec

FAST_DSA = DsaConfig(
    ingestion_delay_s=0.0,
    near_real_time_period_s=300.0,
    hourly_period_s=900.0,
    daily_period_s=900.0,
)


def _build(seed):
    return PingmeshSystem(
        PingmeshSystemConfig(
            specs=(TopologySpec(),),
            seed=seed,
            dsa=FAST_DSA,
            agent=AgentConfig(upload_period_s=120.0),
        )
    )


PAIRINGS = [
    ("tor-blackhole", "silent-spine"),
    ("port-blackhole", "leaf-congestion"),
    ("podset-down", "silent-spine"),
    ("fcs-errors", "tor-blackhole"),
    ("spine-congestion", "podset-down"),
]


class TestFaultCombinations:
    @pytest.mark.parametrize("names", PAIRINGS, ids=["+".join(p) for p in PAIRINGS])
    def test_system_survives_and_recovers(self, names):
        system = _build(seed=sum(map(len, names)))
        system.run_for(350.0)
        records_before = system.store.stream("pingmesh/latency").record_count
        scenarios = [apply_scenario(name, system.fabric) for name in names]

        system.run_for(700.0)

        # Invariant: the pipeline kept running (jobs may find incidents,
        # but nothing raises and no job run failed).
        assert system.job_manager.failure_count() == 0
        # Invariant: surviving agents kept reporting.
        assert (
            system.store.stream("pingmesh/latency").record_count > records_before
        )
        # Invariant: every repair the system filed targets a device that is
        # actually implicated by *some* active scenario (no scapegoats).
        ground_truth = {
            device
            for scenario in scenarios
            for device in scenario.ground_truth_devices
        }
        for request in (
            system.env.device_manager.pending + system.env.device_manager.history
        ):
            if ground_truth:
                assert request.device_id in ground_truth, (
                    f"repair filed against innocent {request.device_id}; "
                    f"guilty set: {sorted(ground_truth)}"
                )

        # Clear everything and confirm the network measures healthy again.
        for scenario in scenarios:
            scenario.revert()
        # Un-isolate anything the RMA path took out (operator replaces it).
        for switch in system.topology.dc(0).all_switches():
            if not switch.is_up:
                switch.bring_up()
        dc = system.topology.dc(0)
        batch = system.fabric.batch_probe(
            dc.servers_in_podset(0)[0], dc.servers_in_podset(1)[0], 20_000
        )
        assert batch.success.mean() > 0.999

    def test_every_scenario_alone_is_survivable(self):
        for index, name in enumerate(sorted(SCENARIOS)):
            system = _build(seed=100 + index)
            system.run_for(200.0)
            apply_scenario(name, system.fabric)
            system.run_for(500.0)
            assert system.job_manager.failure_count() == 0, name

    def test_agents_never_exceed_resource_envelope_under_chaos(self):
        system = _build(seed=55)
        apply_scenario("spine-congestion", system.fabric)
        apply_scenario("tor-blackhole", system.fabric)
        system.run_for(900.0)
        for agent in system.agents.values():
            assert agent.terminated_reason is None
            assert agent.usage.peak_memory_mb < agent.config.memory_cap_mb
