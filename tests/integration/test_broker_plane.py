"""Integration: the on-demand measurement plane over a live sharded fleet.

The contract under test is the tentpole's safety story: injected tenant
work rides the existing round engines (class plans + scalar passthrough),
never bypasses the probe-conservation ledger, never perturbs the baseline
pinglist rounds, and the invariant catalogue — the three broker
invariants included — stays clean while tenants hammer the system.
"""

from __future__ import annotations

import pytest

from repro.broker import MeasurementBroker, RequestState, TenantQuota
from repro.chaos import build_campaign
from repro.chaos.invariants import InvariantChecker
from repro.core.agent.agent import AgentConfig
from repro.core.dsa.pipeline import DsaConfig
from repro.core.sharded import ShardedFleet
from repro.core.system import PingmeshSystem, PingmeshSystemConfig
from repro.netsim.topology import TopologySpec

_SPEC = TopologySpec(n_podsets=2, pods_per_podset=2, servers_per_pod=4)
_FAST_DSA = DsaConfig(ingestion_delay_s=0.0, near_real_time_period_s=300.0)


def _fleet(seed: int = 3, with_broker: bool = True):
    system = PingmeshSystem(
        PingmeshSystemConfig(
            specs=(_SPEC,),
            seed=seed,
            dsa=_FAST_DSA,
            agent=AgentConfig(round_mode="class", upload_period_s=300.0),
        )
    )
    fleet = ShardedFleet(system)
    broker = MeasurementBroker(system) if with_broker else None
    return system, fleet, broker


class TestFleetIntegration:
    def test_idle_broker_keeps_baseline_bit_identical(self):
        _s1, bare, _none = _fleet(seed=3, with_broker=False)
        bare.run_for(600.0)
        _s2, idle, _b = _fleet(seed=3, with_broker=True)
        idle.run_for(600.0)
        assert idle.probes_sent == bare.probes_sent
        assert idle.rounds_run == bare.rounds_run
        assert idle.broker_probes_sent == 0

    def test_burst_completes_via_class_plans(self):
        system, fleet, broker = _fleet()
        broker.register_tenant("acme", TenantQuota(credits_per_window=2000))
        channel = broker.submit(
            "acme", src="podset:0/0", dst="podset:0/1", probes_per_pair=2
        )
        fleet.run_for(600.0)
        assert channel.state is RequestState.COMPLETED
        assert channel.probes_completed == channel.probes_admitted
        assert fleet.broker_probes_sent == channel.probes_launched
        assert broker.probes_launched == broker.probes_delivered

    def test_payload_bursts_take_the_passthrough_path(self):
        system, fleet, broker = _fleet()
        broker.register_tenant("acme", TenantQuota(credits_per_window=2000))
        channel = broker.submit(
            "acme", src="podset:0/0", dst="podset:0/1", payload_bytes=8192
        )
        fleet.run_for(600.0)
        assert channel.state is RequestState.COMPLETED
        # Passthrough probes keep per-probe fidelity: detail rows exist.
        assert channel.details
        assert broker.probes_launched == broker.probes_delivered

    def test_invariants_clean_with_active_broker_on_fleet(self):
        system, fleet, broker = _fleet()
        broker.register_tenant("acme", TenantQuota(credits_per_window=5000))
        # Shard uploaders also write the class stream under a fleet.
        checker = InvariantChecker(system, exclusive_upload_writers=False)
        checker.attach()
        broker.submit("acme", src="podset:0/0", dst="podset:0/1")
        fleet.run_for(300.0)
        broker.submit("acme", src="podset:0/1", dst="podset:1/0", probes_per_pair=2)
        fleet.run_for(300.0)
        violations = checker.check_phase()
        assert violations == []
        assert checker.probes_observed > 0

    def test_round_injection_respects_fleet_cap(self):
        system, fleet, broker = _fleet()
        broker.register_tenant("acme", TenantQuota(credits_per_window=10_000))
        broker.submit("acme", src="dc:0", dst="dc:0", probes_per_pair=8)
        fleet.run_for(600.0)
        cap = broker.admission.max_injected_per_fleet_round
        assert broker.round_log
        for _t, injected, logged_cap in broker.round_log:
            assert injected <= logged_cap <= cap


class TestBrokerStormDrill:
    def test_storm_outcome_mix(self):
        system, campaign, canned = build_campaign("broker-storm", seed=0)
        report = campaign.run(canned.duration_s, phase_s=canned.phase_s)
        report.assert_clean()
        broker = system.broker
        states = [
            (ch.state, ch.reject_reason) for ch in broker.channels.values()
        ]
        assert (RequestState.REJECTED, "insufficient-credits") in states
        assert (RequestState.REJECTED, "unknown-tenant") in states
        # The blackout window fails bursts closed (more than once: the
        # breaker's hysteresis still rejects shortly after the heal).
        degraded = [
            s for s in states if s == (RequestState.REJECTED, "fleet-degraded")
        ]
        assert len(degraded) >= 2
        # The tight-deadline burst ends TRUNCATED with an exact refund.
        truncated = [
            ch
            for ch in broker.channels.values()
            if ch.state is RequestState.TRUNCATED
        ]
        assert truncated
        # Most of the fleet-facing work still completes.
        completed = [
            ch
            for ch in broker.channels.values()
            if ch.state is RequestState.COMPLETED
        ]
        assert len(completed) >= 14
        assert all(a.conserved() for a in broker.accounts.values())

    def test_storm_is_deterministic(self):
        def run():
            system, campaign, canned = build_campaign("broker-storm", seed=11)
            report = campaign.run(canned.duration_s, phase_s=canned.phase_s)
            broker = system.broker
            return (
                report.summary(),
                sorted(
                    (ch.request_id, ch.state.value, ch.probes_launched)
                    for ch in broker.channels.values()
                ),
                sorted(
                    (a.tenant_id, a.ledger()["balance"])
                    for a in broker.accounts.values()
                ),
            )

        assert run() == run()


class TestDownloadTelemetry:
    def test_phase_reports_carry_download_counters(self):
        system, campaign, canned = build_campaign("healthy-baseline", seed=0)
        report = campaign.run(canned.duration_s, phase_s=canned.phase_s)
        report.assert_clean()
        last = report.phases[-1]
        assert last.pinglist_requests > 0
        # Steady state is mostly conditional GETs: 304s dominate.
        assert 0 < last.pinglist_304s <= last.pinglist_requests

    def test_stream_plane_sees_download_rates(self):
        system = PingmeshSystem(
            PingmeshSystemConfig(specs=(_SPEC,), seed=0, dsa=_FAST_DSA)
        )
        system.start()
        system.run_for(600.0)
        assert system.stream is not None
        snapshot = system.stream.download_snapshot
        assert snapshot is not None and snapshot["requests"] > 0
        rates = system.stream.download_rates
        assert rates is not None
        fraction = rates["not_modified_fraction"]
        assert fraction is None or 0.0 <= fraction <= 1.0
