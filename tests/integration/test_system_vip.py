"""End-to-end VIP monitoring (§6.2)."""

import pytest

from repro.core.agent.agent import AgentConfig
from repro.core.dsa.pipeline import DsaConfig
from repro.core.system import PingmeshSystem, PingmeshSystemConfig
from repro.netsim.topology import TopologySpec


def _build(vips, seed=21):
    return PingmeshSystem(
        PingmeshSystemConfig(
            specs=(TopologySpec(),),
            seed=seed,
            dsa=DsaConfig(ingestion_delay_s=0.0, near_real_time_period_s=300.0),
            agent=AgentConfig(upload_period_s=120.0),
            vips=vips,
        )
    )


@pytest.fixture()
def system():
    spec = TopologySpec()
    dips = tuple(f"{spec.name}/ps1/pod4/srv{i}" for i in range(3))
    return _build({"search.vip": dips})


class TestVipMonitoring:
    def test_vip_appears_in_pinglists(self, system):
        pinglist = system.controller.get_pinglist("dc0/ps0/pod0/srv0")
        vips = pinglist.peers_by_purpose("vip")
        assert [entry.peer_id for entry in vips] == ["search.vip"]

    def test_vip_probes_recorded(self, system):
        system.run_for(400.0)
        vip_rows = [
            row
            for row in system.store.read("pingmesh/latency")
            if row["purpose"] == "vip"
        ]
        assert vip_rows
        assert all(row["success"] for row in vip_rows)
        # Probes were load-balanced over the DIPs behind the VIP.
        dips_hit = {row["dst"] for row in vip_rows}
        assert len(dips_hit) == 3

    def test_dark_vip_measured_as_failures(self, system):
        system.run_for(200.0)
        for dip in system.config.vips["search.vip"]:
            system.topology.server(dip).bring_down()
        system.run_for(300.0)
        rows = [
            row
            for row in system.store.read("pingmesh/latency")
            if row["purpose"] == "vip" and row["t"] > 200.0
        ]
        assert rows
        assert all(not row["success"] for row in rows)
        assert all(row["error"] == "vip_down" for row in rows)

    def test_vip_recovers_with_one_dip(self, system):
        dips = system.config.vips["search.vip"]
        for dip in dips:
            system.topology.server(dip).bring_down()
        system.topology.server(dips[1]).bring_up()
        system.run_for(300.0)
        rows = [
            row
            for row in system.store.read("pingmesh/latency")
            if row["purpose"] == "vip"
        ]
        ok = [row for row in rows if row["success"]]
        assert ok
        assert {row["dst"] for row in ok} == {dips[1]}

    def test_vip_rows_do_not_pollute_heatmap(self, system):
        for dip in system.config.vips["search.vip"]:
            system.topology.server(dip).bring_down()
        system.run_for(650.0)
        # Heatmap builds fine and the network still classifies by its real
        # state (one pod has down servers; the rest is normal).
        heatmap = system.dsa.latest_heatmap(0, t=system.clock.now)
        assert heatmap.n_pods == 8


class TestVipDuringIncidents:
    def test_dark_vip_plus_silent_drops_keeps_pipeline_healthy(self):
        """A dark VIP must not break silent-drop localization (the VIP is a
        logical target traceroute cannot resolve)."""
        from repro.netsim.faults import SilentRandomDrop

        spec = TopologySpec()
        dips = tuple(f"{spec.name}/ps1/pod4/srv{i}" for i in range(2))
        system = _build({"search.vip": dips}, seed=31)
        system.run_for(100.0)
        for dip in dips:
            system.topology.server(dip).bring_down()
        spine = system.topology.dc(0).spines[0]
        system.fabric.faults.inject(
            SilentRandomDrop(switch_id=spine.device_id, drop_prob=0.05)
        )
        system.run_for(700.0)
        assert system.job_manager.failure_count() == 0
        assert system.dsa.incidents  # the real incident was still found
        localized = {i.localized_switch for i in system.dsa.incidents}
        assert spine.device_id in localized

    def test_vip_rows_do_not_enter_podpair_table(self):
        spec = TopologySpec()
        dips = (f"{spec.name}/ps1/pod4/srv0",)
        system = _build({"search.vip": dips}, seed=32)
        system.topology.server(dips[0]).bring_down()
        system.run_for(650.0)
        rows = system.database.query("podpair_10min")
        assert rows
        assert all(row["dst_pod"] >= 0 for row in rows)


class TestVipAfterGrowth:
    """add_podset must wire new agents identically to start() — including
    the VIP resolver (the growth path used to silently drop it, so agents
    on new podsets skipped every vip-purpose entry forever)."""

    def test_new_agents_get_the_vip_resolver(self, system):
        system.run_for(120.0)
        new_ids = system.add_podset()
        for server_id in new_ids:
            assert system.agents[server_id].vip_resolver is not None

    def test_new_agents_actually_probe_the_vip(self, system):
        system.run_for(120.0)
        new_ids = system.add_podset()
        system.run_for(600.0)
        new_set = set(new_ids)
        vip_rows = [
            row
            for row in system.store.read("pingmesh/latency")
            if row["purpose"] == "vip" and row["src"] in new_set
        ]
        assert vip_rows, "agents on the grown podset must measure the VIP"

    def test_growth_without_vips_still_omits_resolver(self):
        system = _build({})
        system.start()
        new_ids = system.add_podset()
        for server_id in new_ids:
            assert system.agents[server_id].vip_resolver is None
