"""Drills for the degraded-mode resilience layer.

Four campaigns exercise the layer end to end: a controller brownout
(slow, not dead), a replica flap storm (breakers vs health sweeps), a
recovery stampede (jitter vs thundering herd) and a Cosmos
blackout-and-heal (spool-and-replay).  Each drill asserts both the
invariant catalogue (``report.assert_clean()`` — which now includes the
replay ledger, the staleness machine and the herd bound) and the
campaign-specific degraded behaviour.
"""

from __future__ import annotations

from repro.chaos import build_campaign
from repro.core.controller.pinglist import Pinglist
from repro.resilience import BreakerState, PinglistState


def _run(name: str, seed: int = 0):
    system, campaign, canned = build_campaign(name, seed=seed)
    report = campaign.run(canned.duration_s, phase_s=canned.phase_s)
    return system, report


class TestControllerBrownout:
    def test_slow_replicas_degrade_to_stale_never_closed(self):
        system, report = _run("controller-brownout")
        report.assert_clean()
        # Slow is not dead: nobody may fall closed during the window...
        assert all(phase.fail_closed_agents == 0 for phase in report.phases)
        # ...but the fleet visibly rode through STALE on cached pinglists.
        assert max(phase.stale_agents for phase in report.phases) > 0
        stale_rows = [
            row
            for row in system.store.read("pingmesh/latency")
            if row.get("pinglist_stale")
        ]
        assert stale_rows, "STALE probing must be tagged in the upload rows"
        # Everyone recovered FRESH by campaign end.
        assert all(
            agent.pinglist_state is PinglistState.FRESH
            for agent in system.agents.values()
        )
        assert report.phases[-1].stale_agents == 0

    def test_breakers_eject_what_health_checks_cannot_see(self):
        system, report = _run("controller-brownout")
        report.assert_clean()
        slb = system.controller.slb
        # The up/down health check passed throughout (replicas never died)
        # so only request-path breakers could have ejected them.
        assert all(replica.up for replica in system.controller.replicas.values())
        assert any(
            backend.breaker.opened_count > 0
            for backend in slb.backends.values()
        )
        # All breakers re-closed after the heal.
        assert all(
            backend.breaker.state is BreakerState.CLOSED
            for backend in slb.backends.values()
        )

    def test_probing_never_stops(self):
        # The cached pinglist carries the fleet through the brownout: probes
        # keep flowing in every phase, including the window itself.
        _system, report = _run("controller-brownout")
        sent = [phase.total_probes_sent for phase in report.phases]
        assert all(b > a for a, b in zip(sent, sent[1:]))


class TestReplicaFlapStorm:
    def test_breakers_absorb_the_flaps_without_staleness(self):
        system, report = _run("replica-flap-storm")
        report.assert_clean()
        # Failover within one VIP call hides every flap: no agent ever
        # missed a refresh, let alone fell closed.
        assert all(phase.fail_closed_agents == 0 for phase in report.phases)
        assert all(phase.stale_agents == 0 for phase in report.phases)
        assert all(
            agent.safety.consecutive_failures == 0
            for agent in system.agents.values()
        )
        # The flapping replica's breaker tripped on request evidence (the
        # stretched health-check interval means sweeps could not help).
        assert (
            system.controller.slb.backends["controller0"].breaker.opened_count
            > 0
        )

    def test_recovered_replica_serves_byte_identical_files(self):
        system, report = _run("replica-flap-storm")
        report.assert_clean()
        flapped = system.controller.replicas["controller0"]
        survivor = system.controller.replicas["controller1"]
        assert flapped.up
        assert flapped.generation == survivor.generation
        # recover_replica() is lazy, but rendering stays deterministic:
        # the same files, byte for byte, at the fleet's generation stamp.
        for server in system.topology.all_servers():
            xml = flapped.serve(server.device_id)
            assert xml == survivor.serve(server.device_id)
            assert (
                Pinglist.from_xml(xml).generated_at
                == system.controller.last_generated_t
            )


class TestRecoveryStampede:
    def test_fleet_fails_closed_then_recovers_without_a_herd(self):
        system, report = _run("recovery-stampede")
        # assert_clean() covers refresh-herd-factor: the recovery wave
        # stayed under half the fleet per second.
        report.assert_clean()
        n = len(system.agents)
        # The 300s blackout (2.5 refresh periods) closed the whole fleet...
        assert max(phase.fail_closed_agents for phase in report.phases) == n
        # ...and the heal at 420s reopened every agent before 720s.
        assert report.phases[-1].fail_closed_agents == 0
        assert all(
            agent.pinglist_state is PinglistState.FRESH
            for agent in system.agents.values()
        )

    def test_recovery_requests_are_spread_not_synchronized(self):
        system, report = _run("recovery-stampede")
        report.assert_clean()
        buckets = system.controller.requests_by_second
        recovery = {
            second: count for second, count in buckets.items() if second >= 420
        }
        assert recovery, "agents must have re-polled after the heal"
        # The explicit form of the herd invariant: peak per-second request
        # rate over the recovery stays under half the fleet.
        assert max(recovery.values()) <= len(system.agents) // 2


class TestCosmosBlackoutHeal:
    def test_spool_replays_once_and_discards_are_bounded(self):
        system, report = _run("cosmos-blackout-heal")
        # assert_clean() covers upload-replay-no-duplication at every
        # phase boundary, including mid-blackout and right after the heal.
        report.assert_clean()
        for agent in system.agents.values():
            stats = agent.uploader.stats
            # Early batches exhausted their three spaced attempts...
            assert stats.records_discarded > 0
            # ...the last pre-heal batch survived the spool and replayed...
            assert stats.records_replayed > 0
            # ...and the backlog fully drained before campaign end.
            assert agent.uploader.spooled_records == 0
            assert stats.records_added == (
                stats.records_uploaded
                + stats.records_discarded
                + agent.uploader.buffered_records
            )

    def test_store_totals_match_uploader_ledgers_exactly(self):
        system, report = _run("cosmos-blackout-heal")
        report.assert_clean()
        landed = system.store.stream("pingmesh/latency").record_count
        uploaded = sum(
            agent.uploader.stats.records_uploaded
            for agent in system.agents.values()
        )
        assert landed == uploaded
