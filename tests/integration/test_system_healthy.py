"""End-to-end: a healthy Pingmesh deployment."""

import pytest

from repro.autopilot.watchdog import HealthStatus
from repro.core.agent.agent import AgentConfig
from repro.core.dsa.pipeline import DsaConfig
from repro.core.dsa.sla import ServiceDefinition
from repro.core.system import PingmeshSystem, PingmeshSystemConfig
from repro.netsim.topology import TopologySpec

# Short cadences so integration tests stay fast: 5-min "10-min" jobs, etc.
FAST_DSA = DsaConfig(
    ingestion_delay_s=0.0,
    near_real_time_period_s=300.0,
    hourly_period_s=900.0,
    daily_period_s=1800.0,
)


def _build(seed=1, services=(), spec=None):
    config = PingmeshSystemConfig(
        specs=(spec or TopologySpec(),),
        seed=seed,
        dsa=FAST_DSA,
        agent=AgentConfig(upload_period_s=120.0),
        services=tuple(services),
    )
    return PingmeshSystem(config)


@pytest.fixture(scope="module")
def ran_system():
    system = _build()
    system.run_for(1900.0)
    return system


class TestHealthyOperation:
    def test_every_agent_probes(self, ran_system):
        assert all(agent.probes_sent > 0 for agent in ran_system.agents.values())

    def test_data_lands_in_cosmos(self, ran_system):
        stream = ran_system.store.stream("pingmesh/latency")
        assert stream.record_count > 10_000

    def test_dsa_tables_populated(self, ran_system):
        tables = set(ran_system.database.tables())
        assert {"podpair_10min", "patterns_10min", "sla_hourly"} <= tables

    def test_pattern_is_normal(self, ran_system):
        assert ran_system.dsa.latest_pattern(0)["pattern"] == "normal"

    def test_no_alerts_on_healthy_network(self, ran_system):
        assert ran_system.alerts() == []

    def test_not_a_network_issue(self, ran_system):
        assert ran_system.is_network_issue() is False

    def test_watchdogs_all_ok(self, ran_system):
        reports = ran_system.env.watchdogs.run_once()
        assert all(
            report.status == HealthStatus.OK for report in reports.values()
        ), {name: report.detail for name, report in reports.items()}

    def test_pa_collected_agent_counters(self, ran_system):
        server_id = next(iter(ran_system.agents))
        series = ran_system.env.perfcounter.series(server_id, "latency_p99_us")
        assert len(series) >= 3  # PA sweeps every 300 s

    def test_agent_resource_envelope(self, ran_system):
        """Figure 3's claim: tiny CPU, bounded memory."""
        now = ran_system.clock.now
        for agent in ran_system.agents.values():
            assert agent.usage.cpu_utilization(now) < 0.01  # << 1 % CPU
            assert agent.usage.peak_memory_mb < agent.config.memory_cap_mb

    def test_dc_sla_in_expected_band(self, ran_system):
        rows = ran_system.database.query(
            "sla_hourly", where=lambda r: r["scope"] == "datacenter"
        )
        assert rows
        newest = max(rows, key=lambda r: r["t"])
        assert 150.0 < newest["p50_us"] < 500.0
        assert newest["drop_rate"] < 1e-3

    def test_start_twice_rejected(self, ran_system):
        with pytest.raises(RuntimeError):
            ran_system.start()


class TestServices:
    def test_per_service_sla_tracked(self):
        spec = TopologySpec()
        # Build server ids up front — the service maps to servers (§1).
        prefix = f"{spec.name}/ps0/pod0"
        service = ServiceDefinition.of(
            "search", [f"{prefix}/srv{i}" for i in range(4)]
        )
        system = _build(services=[service])
        system.run_for(1000.0)
        rows = system.database.query(
            "sla_hourly", where=lambda r: r["scope"] == "service"
        )
        assert rows
        assert rows[0]["key"] == "search"
        assert system.is_network_issue(service="search") is False


class TestFailClosedFleet:
    def test_kill_switch_stops_the_fleet(self):
        system = _build()
        system.run_for(200.0)
        before = system.total_probes_sent()
        assert before > 0
        system.controller.remove_all_pinglists()
        # Agents notice at their next refresh; force refreshes now.
        for agent in system.agents.values():
            agent.refresh_pinglist(system.clock.now)
        system.run_for(300.0)
        assert system.total_probes_sent() == before  # nobody probes anymore
        assert all(agent.safety.fail_closed for agent in system.agents.values())

    def test_fleet_recovers_when_pinglists_return(self):
        system = _build()
        system.run_for(100.0)
        system.controller.remove_all_pinglists()
        for agent in system.agents.values():
            agent.refresh_pinglist(system.clock.now)
        system.controller.regenerate()
        for agent in system.agents.values():
            agent.refresh_pinglist(system.clock.now)
        before = system.total_probes_sent()
        system.run_for(120.0)
        assert system.total_probes_sent() > before


class TestAgentSupervision:
    def test_killed_agent_is_restarted_by_service_manager(self):
        system = _build(seed=44)
        system.run_for(100.0)
        victim = next(iter(system.agents.values()))
        victim.terminate("memory cap exceeded: synthetic kill")
        assert not victim.running
        # The Service Manager sweeps every 60 s and restarts after 60 s.
        system.run_for(200.0)
        assert victim.running
        assert victim.terminated_reason is None
        restarts = system.service_manager.restarts
        assert any(r.server_id == victim.server_id for r in restarts)

    def test_restarted_agent_resumes_probing(self):
        system = _build(seed=45)
        system.run_for(100.0)
        victim = next(iter(system.agents.values()))
        victim.terminate("memory cap exceeded: synthetic kill")
        before = victim.probes_sent
        system.run_for(400.0)
        assert victim.probes_sent > before
