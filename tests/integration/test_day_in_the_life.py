"""A full operational day, replayed: quiet → black-hole → power blip → quiet.

The showcase integration test: 24 simulated hours on a small deployment
with a scripted incident timeline, verifying the DSA record reflects the
day as it actually happened.
"""

import pytest

from repro.core.agent.agent import AgentConfig
from repro.core.dsa.pipeline import DsaConfig
from repro.core.dsa.queries import DsaQueries
from repro.core.dsa.reports import ReportBuilder
from repro.core.system import PingmeshSystem, PingmeshSystemConfig
from repro.netsim.faultschedule import FaultSchedule
from repro.netsim.simclock import SECONDS_PER_DAY
from repro.netsim.topology import TopologySpec

SMALL = TopologySpec(n_podsets=2, pods_per_podset=2, servers_per_pod=4)

BLACKHOLE_START = 6 * 3600.0
PODSET_BLIP_START = 15 * 3600.0
PODSET_BLIP_END = 16 * 3600.0


@pytest.fixture(scope="module")
def day():
    system = PingmeshSystem(
        PingmeshSystemConfig(
            specs=(SMALL,),
            seed=99,
            dsa=DsaConfig(
                ingestion_delay_s=0.0,
                near_real_time_period_s=600.0,
                hourly_period_s=3600.0,
                daily_period_s=SECONDS_PER_DAY / 4,  # detector runs 4x/day
            ),
            agent=AgentConfig(upload_period_s=300.0),
        )
    )
    system.start()
    schedule = FaultSchedule(system.fabric, system.queue)
    # 06:00 — a ToR develops a black-hole; auto-repair should clear it.
    schedule.add("tor-blackhole", BLACKHOLE_START, end_t=None, pod=1)
    # 15:00-16:00 — a podset loses power for an hour.
    schedule.add(
        "podset-down", PODSET_BLIP_START, end_t=PODSET_BLIP_END, podset=1
    )
    system.run_for(SECONDS_PER_DAY)
    return system, schedule


class TestTheDay:
    def test_the_day_completed_without_pipeline_failures(self, day):
        system, _schedule = day
        assert system.clock.now == SECONDS_PER_DAY
        assert system.job_manager.failure_count() == 0

    def test_probing_ran_all_day(self, day):
        system, _schedule = day
        assert system.total_probes_sent() > 50_000

    def test_blackhole_was_detected_and_repaired(self, day):
        system, schedule = day
        tor = system.topology.dc(0).tors[1]
        assert tor.reload_count >= 1
        assert system.fabric.faults.faults_on(tor.device_id) == []
        # And the repair is in the DM history with a black-hole reason.
        repairs = [
            r
            for r in system.env.device_manager.history
            if r.device_id == tor.device_id and r.action == "reload_switch"
        ]
        assert repairs
        assert "black-hole" in repairs[0].reason

    def test_power_blip_visible_in_pattern_history(self, day):
        system, _schedule = day
        history = DsaQueries(system.database).pattern_history(0, limit=200)
        patterns_during_blip = {
            row["pattern"]
            for row in history
            if PODSET_BLIP_START + 600 < row["t"] <= PODSET_BLIP_END + 600
        }
        assert "podset-down" in patterns_during_blip

    def test_network_healthy_again_by_midnight(self, day):
        system, _schedule = day
        latest = DsaQueries(system.database).pattern_history(0, limit=1)[0]
        assert latest["pattern"] == "normal"
        assert system.is_network_issue() is False

    def test_daily_report_tells_the_story(self, day):
        system, _schedule = day
        report = ReportBuilder(system.database).daily_sla_report(
            t=SECONDS_PER_DAY
        )
        assert "dc0" in report.text
        # The black-hole detector's work shows up in the detector section.
        assert "black-holed ToR(s)" in report.text

    def test_ground_truth_bookkeeping(self, day):
        _system, schedule = day
        # At noon the black-hole was active, the podset was still up.
        active_noon = {i.scenario_name for i in schedule.active_at(12 * 3600.0)}
        assert active_noon == {"tor-blackhole"}
        active_blip = {i.scenario_name for i in schedule.active_at(15.5 * 3600.0)}
        assert "podset-down" in active_blip
        # The power came back.
        blip = next(
            i for i in schedule.incidents if i.scenario_name == "podset-down"
        )
        assert blip.ended
