"""Tests for the real-socket probe library, over loopback."""

import asyncio

import pytest

from repro.liveprobe.client import http_ping, tcp_ping, tcp_ping_sync
from repro.liveprobe.prober import LiveProber, PeerSpec
from repro.liveprobe.server import MAX_PAYLOAD, ProbeServer


def run(coro):
    return asyncio.run(coro)


class TestTcpPing:
    def test_syn_style_ping(self):
        async def scenario():
            async with ProbeServer() as server:
                return await tcp_ping("127.0.0.1", server.port), server

        result, server = run(scenario())
        assert result.success
        assert 0 < result.rtt_s < 1.0
        assert result.payload_rtt_s is None
        assert server.connections_served == 1

    def test_payload_echo_ping(self):
        async def scenario():
            async with ProbeServer() as server:
                return await tcp_ping(
                    "127.0.0.1", server.port, payload=b"x" * 1000
                ), server

        result, server = run(scenario())
        assert result.success
        assert result.payload_rtt_s is not None
        assert result.payload_rtt_s > 0
        assert server.payloads_echoed == 1

    def test_each_probe_is_a_new_connection(self):
        async def scenario():
            async with ProbeServer() as server:
                for _ in range(5):
                    await tcp_ping("127.0.0.1", server.port)
                return server

        server = run(scenario())
        assert server.connections_served == 5

    def test_connect_refused_is_a_clean_failure(self):
        # Nothing listens on this port (we bind then close to find one).
        async def scenario():
            async with ProbeServer() as server:
                dead_port = server.port
            return await tcp_ping("127.0.0.1", dead_port, timeout_s=2.0)

        result = run(scenario())
        assert not result.success
        assert result.error.startswith("connect")

    def test_over_cap_payload_rejected_client_side(self):
        with pytest.raises(ValueError):
            tcp_ping_sync("127.0.0.1", 1, payload=b"x" * (MAX_PAYLOAD + 1))

    def test_sync_wrapper(self):
        async def get_port():
            server = ProbeServer()
            await server.start()
            return server

        # Run server in a dedicated loop thread-free way: use one loop for
        # both by doing the whole flow in async; the sync wrapper is
        # exercised against a dead port (failure path, no loop conflict).
        result = tcp_ping_sync("127.0.0.1", 9, timeout_s=0.5)
        assert not result.success


class TestHttpPing:
    def test_http_ping_200(self):
        async def scenario():
            async with ProbeServer() as server:
                return await http_ping("127.0.0.1", server.port), server

        result, server = run(scenario())
        assert result.success
        assert server.http_requests == 1

    def test_http_ping_dead_port(self):
        async def scenario():
            async with ProbeServer() as server:
                dead_port = server.port
            return await http_ping("127.0.0.1", dead_port, timeout_s=2.0)

        assert not run(scenario()).success


class TestServerLifecycle:
    def test_double_start_rejected(self):
        async def scenario():
            server = ProbeServer()
            await server.start()
            try:
                with pytest.raises(RuntimeError):
                    await server.start()
            finally:
                await server.stop()

        run(scenario())

    def test_port_before_start_rejected(self):
        with pytest.raises(RuntimeError):
            ProbeServer().port

    def test_stop_is_idempotent(self):
        async def scenario():
            server = ProbeServer()
            await server.start()
            await server.stop()
            await server.stop()

        run(scenario())


class TestLiveProber:
    def test_round_against_two_servers(self):
        async def scenario():
            async with ProbeServer() as a, ProbeServer() as b:
                prober = LiveProber(
                    [
                        PeerSpec("127.0.0.1", a.port),
                        PeerSpec("127.0.0.1", b.port, payload_bytes=500),
                        PeerSpec("127.0.0.1", a.port, protocol="http"),
                    ]
                )
                results = await prober.run_round()
                return prober, results

        prober, results = run(scenario())
        assert len(results) == 3
        assert all(result.success for result in results)
        snapshot = prober.snapshot()
        assert snapshot["probes_total"] == 3.0
        assert snapshot["latency_p50_us"] > 0

    def test_failures_feed_counters(self):
        async def scenario():
            async with ProbeServer() as server:
                dead_port = server.port
            prober = LiveProber(
                [PeerSpec("127.0.0.1", dead_port)], timeout_s=1.0
            )
            await prober.run_round()
            return prober

        prober = run(scenario())
        assert prober.counters.probes_failed == 1

    def test_peer_spec_validation(self):
        with pytest.raises(ValueError):
            PeerSpec("h", 80, protocol="udp")
        with pytest.raises(ValueError):
            PeerSpec("h", 0)
        with pytest.raises(ValueError):
            PeerSpec("h", 80, payload_bytes=-1)
        with pytest.raises(ValueError):
            LiveProber([], max_concurrency=0)
