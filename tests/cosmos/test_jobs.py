"""Tests for the SCOPE Job Manager."""

import pytest

from repro.cosmos.jobs import JobManager, JobStatus, ScopeJob
from repro.netsim.simclock import EventQueue, SimClock


@pytest.fixture()
def queue():
    return EventQueue(SimClock())


class TestScheduling:
    def test_job_runs_every_period(self, queue):
        manager = JobManager(queue)
        ticks = []
        manager.register(
            ScopeJob("10min", 600.0, lambda t: ticks.append(t) or [])
        )
        queue.run_for(3600.0)
        assert ticks == [600.0, 1200.0, 1800.0, 2400.0, 3000.0, 3600.0]

    def test_multiple_cadences_coexist(self, queue):
        manager = JobManager(queue)
        counts = {"fast": 0, "slow": 0}

        def bump(name):
            def run(t):
                counts[name] += 1

            return run

        manager.register(ScopeJob("fast", 600.0, bump("fast")))
        manager.register(ScopeJob("slow", 3600.0, bump("slow")))
        queue.run_for(7200.0)
        assert counts == {"fast": 12, "slow": 2}

    def test_first_run_delay_override(self, queue):
        manager = JobManager(queue)
        ticks = []
        manager.register(
            ScopeJob("j", 600.0, lambda t: ticks.append(t)), first_run_delay=0.0
        )
        queue.run_for(600.0)
        assert ticks == [0.0, 600.0]

    def test_duplicate_registration_rejected(self, queue):
        manager = JobManager(queue)
        manager.register(ScopeJob("j", 600.0, lambda t: None))
        with pytest.raises(ValueError):
            manager.register(ScopeJob("j", 300.0, lambda t: None))

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            ScopeJob("j", 0.0, lambda t: None)


class TestRunRecords:
    def test_success_records_row_count(self, queue):
        manager = JobManager(queue)
        manager.register(ScopeJob("j", 100.0, lambda t: [{"a": 1}, {"a": 2}]))
        queue.run_for(100.0)
        runs = manager.runs_of("j")
        assert len(runs) == 1
        assert runs[0].status == JobStatus.SUCCEEDED
        assert runs[0].rows_out == 2

    def test_none_result_counts_zero_rows(self, queue):
        manager = JobManager(queue)
        manager.register(ScopeJob("j", 100.0, lambda t: None))
        queue.run_for(100.0)
        assert manager.runs_of("j")[0].rows_out == 0

    def test_failing_job_is_contained_and_rescheduled(self, queue):
        manager = JobManager(queue)

        def explode(t):
            raise RuntimeError("boom")

        manager.register(ScopeJob("bad", 100.0, explode))
        manager.register(ScopeJob("good", 100.0, lambda t: []))
        queue.run_for(300.0)
        assert manager.failure_count() == 3
        assert all(
            run.status == JobStatus.SUCCEEDED for run in manager.runs_of("good")
        )
        assert "boom" in manager.runs_of("bad")[0].error

    def test_disable_pauses_but_keeps_schedule(self, queue):
        manager = JobManager(queue)
        ticks = []
        manager.register(ScopeJob("j", 100.0, lambda t: ticks.append(t)))
        manager.disable("j")
        queue.run_for(300.0)
        assert ticks == []
        manager.enable("j")
        queue.run_for(200.0)
        assert len(ticks) == 2

    def test_unknown_job_lookup_raises(self, queue):
        manager = JobManager(queue)
        with pytest.raises(KeyError):
            manager.disable("ghost")

    def test_jobs_listing(self, queue):
        manager = JobManager(queue)
        manager.register(ScopeJob("b", 10.0, lambda t: None))
        manager.register(ScopeJob("a", 10.0, lambda t: None))
        assert manager.jobs() == ["a", "b"]
