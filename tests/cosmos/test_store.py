"""Tests for the Cosmos append-only extent store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cosmos.store import CosmosStore, ExtentUnavailableError


@pytest.fixture()
def store():
    return CosmosStore(n_storage_nodes=5, replication=3, extent_max_records=4)


def _rows(n, offset=0):
    return [{"i": i + offset, "rtt_us": 100.0 + i} for i in range(n)]


class TestConstruction:
    def test_rejects_replication_above_nodes(self):
        with pytest.raises(ValueError):
            CosmosStore(n_storage_nodes=2, replication=3)

    def test_rejects_zero_replication(self):
        with pytest.raises(ValueError):
            CosmosStore(replication=0)

    def test_rejects_zero_extent_size(self):
        with pytest.raises(ValueError):
            CosmosStore(extent_max_records=0)


class TestAppendAndRead:
    def test_roundtrip(self, store):
        rows = _rows(3)
        store.append("s", rows)
        assert list(store.read("s")) == rows

    def test_append_creates_stream_implicitly(self, store):
        store.append("implicit", _rows(1))
        assert store.has_stream("implicit")

    def test_records_split_into_extents(self, store):
        written = store.append("s", _rows(10))  # extent_max_records=4
        assert written == 3
        assert len(store.stream("s").extents) == 3
        assert store.stream("s").record_count == 10

    def test_appends_accumulate_in_order(self, store):
        store.append("s", _rows(2))
        store.append("s", _rows(2, offset=2))
        assert [row["i"] for row in store.read("s")] == [0, 1, 2, 3]

    def test_empty_append_is_noop(self, store):
        assert store.append("s", []) == 0
        assert not store.has_stream("s")

    def test_stored_records_are_isolated_from_caller(self, store):
        rows = _rows(1)
        store.append("s", rows)
        rows[0]["i"] = 999
        assert next(store.read("s"))["i"] == 0

    def test_read_returns_copies(self, store):
        store.append("s", _rows(1))
        first = next(store.read("s"))
        first["i"] = 999
        assert next(store.read("s"))["i"] == 0

    def test_read_where_pushdown(self, store):
        store.append("s", _rows(8))
        rows = list(store.read_where("s", lambda r: r["i"] % 2 == 0))
        assert [row["i"] for row in rows] == [0, 2, 4, 6]

    def test_unknown_stream_raises(self, store):
        with pytest.raises(KeyError):
            list(store.read("missing"))

    def test_create_duplicate_stream_rejected(self, store):
        store.create_stream("s")
        with pytest.raises(ValueError):
            store.create_stream("s")

    def test_list_streams_sorted(self, store):
        store.append("b", _rows(1))
        store.append("a", _rows(1))
        assert store.list_streams() == ["a", "b"]


class TestReplication:
    def test_each_extent_has_distinct_replicas(self, store):
        store.append("s", _rows(12))
        for extent in store.stream("s").extents:
            assert len(set(extent.replicas)) == store.replication

    def test_survives_minority_node_failures(self, store):
        store.append("s", _rows(12))
        store.fail_node(0)
        store.fail_node(1)
        assert len(list(store.read("s"))) == 12

    def test_losing_all_replicas_is_detected(self, store):
        store.append("s", _rows(2))
        for node in store.stream("s").extents[0].replicas:
            store.fail_node(node)
        with pytest.raises(ExtentUnavailableError):
            list(store.read("s"))

    def test_recover_node_restores_reads(self, store):
        store.append("s", _rows(2))
        replicas = store.stream("s").extents[0].replicas
        for node in replicas:
            store.fail_node(node)
        store.recover_node(replicas[0])
        assert len(list(store.read("s"))) == 2

    def test_fail_unknown_node_rejected(self, store):
        with pytest.raises(ValueError):
            store.fail_node(99)


class TestRetentionAndAccounting:
    def test_expire_before_drops_old_extents(self, store):
        store.append("s", _rows(4), t=100.0)
        store.append("s", _rows(4, offset=4), t=200.0)
        removed = store.expire_before("s", 150.0)
        assert removed == 1
        assert [row["i"] for row in store.read("s")] == [4, 5, 6, 7]

    def test_bytes_ingested_grows(self, store):
        store.append("s", _rows(4))
        assert store.bytes_ingested > 0
        assert store.stream_bytes("s") == store.total_bytes()

    def test_ingest_rate(self, store):
        store.append("s", _rows(4))
        rate = store.ingest_rate_bps(window_s=10.0)
        assert rate == pytest.approx(store.bytes_ingested * 8.0 / 10.0)
        with pytest.raises(ValueError):
            store.ingest_rate_bps(0)

    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=60))
    def test_record_count_invariant(self, values):
        """Property: total records out equals total records in."""
        store = CosmosStore(extent_max_records=7)
        rows = [{"v": v} for v in values]
        store.append("s", rows)
        if rows:
            assert store.stream("s").record_count == len(rows)
            assert [row["v"] for row in store.read("s")] == values


class TestExtentPruning:
    def test_appended_since_skips_old_extents(self):
        store = CosmosStore(extent_max_records=2)
        store.append("s", _rows(2), t=100.0)
        store.append("s", _rows(2, offset=2), t=200.0)
        store.append("s", _rows(2, offset=4), t=300.0)
        rows = list(store.read_where("s", lambda r: True, appended_since=200.0))
        assert [row["i"] for row in rows] == [2, 3, 4, 5]

    def test_pruning_is_safe_for_time_window_queries(self):
        """A record generated at t can only land in an extent appended at
        >= t, so pruning by window start never loses in-window records."""
        store = CosmosStore(extent_max_records=3)
        # Records generated at t = 0, 10, ..., 80, all uploaded late at
        # t=150 — the extent postdates the window start, so pruning by the
        # window start must keep it.
        store.append("s", [{"t": float(i * 10)} for i in range(9)], t=150.0)
        rows = list(
            store.read_where(
                "s", lambda r: 50.0 <= r["t"] < 100.0, appended_since=50.0
            )
        )
        assert sorted(row["t"] for row in rows) == [50.0, 60.0, 70.0, 80.0]

    def test_pruning_none_reads_everything(self):
        store = CosmosStore()
        store.append("s", _rows(5), t=10.0)
        rows = list(store.read_where("s", lambda r: True, appended_since=None))
        assert len(rows) == 5

    def test_pruned_read_still_detects_lost_extents(self):
        store = CosmosStore(n_storage_nodes=3, replication=3, extent_max_records=2)
        store.append("s", _rows(2), t=100.0)
        for node in range(3):
            store.fail_node(node)
        with pytest.raises(ExtentUnavailableError):
            list(store.read_where("s", lambda r: True, appended_since=50.0))
