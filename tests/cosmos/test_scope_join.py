"""Tests for the SCOPE join verb."""

import pytest

from repro.cosmos.scope import RowSet


@pytest.fixture()
def latency():
    return RowSet(
        [
            {"pod": "p0", "p99_us": 900.0},
            {"pod": "p1", "p99_us": 6000.0},
            {"pod": "p9", "p99_us": 100.0},  # no metadata match
        ]
    )


@pytest.fixture()
def metadata():
    return RowSet(
        [
            {"pod": "p0", "podset": 0, "service": "search"},
            {"pod": "p1", "podset": 0, "service": "storage"},
            {"pod": "p2", "podset": 1, "service": "idle"},
        ]
    )


class TestInnerJoin:
    def test_matching_rows_joined(self, latency, metadata):
        out = latency.join(metadata, on=["pod"]).output()
        assert len(out) == 2
        row = next(r for r in out if r["pod"] == "p1")
        assert row["service"] == "storage"
        assert row["p99_us"] == 6000.0

    def test_unmatched_left_rows_dropped(self, latency, metadata):
        out = latency.join(metadata, on=["pod"]).output()
        assert all(row["pod"] != "p9" for row in out)

    def test_one_to_many(self, latency):
        many = RowSet(
            [
                {"pod": "p0", "alert": "a1"},
                {"pod": "p0", "alert": "a2"},
            ]
        )
        out = latency.join(many, on=["pod"]).output()
        assert len(out) == 2
        assert {row["alert"] for row in out} == {"a1", "a2"}

    def test_multi_key_join(self):
        left = RowSet([{"dc": 0, "pod": 1, "x": 10}])
        right = RowSet(
            [{"dc": 0, "pod": 1, "y": 20}, {"dc": 1, "pod": 1, "y": 99}]
        )
        out = left.join(right, on=["dc", "pod"]).output()
        assert out == [{"dc": 0, "pod": 1, "x": 10, "y": 20}]

    def test_column_collision_gets_suffix(self):
        left = RowSet([{"k": 1, "v": "left"}])
        right = RowSet([{"k": 1, "v": "right"}])
        out = left.join(right, on=["k"]).output()
        assert out == [{"k": 1, "v": "left", "v_right": "right"}]


class TestLeftJoin:
    def test_unmatched_left_rows_kept_with_nones(self, latency, metadata):
        out = latency.join(metadata, on=["pod"], how="left").output()
        assert len(out) == 3
        orphan = next(r for r in out if r["pod"] == "p9")
        assert orphan["service"] is None
        assert orphan["podset"] is None


class TestValidation:
    def test_empty_keys_rejected(self, latency, metadata):
        with pytest.raises(ValueError):
            latency.join(metadata, on=[])

    def test_unknown_join_type_rejected(self, latency, metadata):
        with pytest.raises(ValueError):
            latency.join(metadata, on=["pod"], how="outer")

    def test_join_is_pure(self, latency, metadata):
        latency.join(metadata, on=["pod"])
        assert len(latency) == 3
        assert "service" not in latency.output()[0]
