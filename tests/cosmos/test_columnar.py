"""Tests for the columnar extent packing and the col/lit expression DSL."""

import numpy as np
import pytest

from repro.cosmos.columnar import ColumnBlock, col, concat_blocks, lit
from repro.cosmos.store import CosmosStore


def _records(n, offset=0):
    return [
        {
            "i": i + offset,
            "rtt_us": 100.0 + i,
            "ok": i % 2 == 0,
            "name": f"s{i}",
        }
        for i in range(n)
    ]


class TestColumnBlockPacking:
    def test_from_records_types(self):
        block = ColumnBlock.from_records(_records(4))
        assert block.n == 4
        assert block.columns["i"].dtype == np.int64
        assert block.columns["rtt_us"].dtype == np.float64
        assert block.columns["ok"].dtype == np.bool_
        assert block.columns["name"].dtype.kind == "U"

    def test_int_float_mix_promotes_to_float(self):
        block = ColumnBlock.from_records([{"v": 1}, {"v": 2.5}])
        assert block.columns["v"].dtype == np.float64

    def test_none_makes_object_column(self):
        block = ColumnBlock.from_records([{"v": 1.0}, {"v": None}])
        assert block.columns["v"].dtype == object
        assert block.columns["v"].tolist() == [1.0, None]

    def test_mixed_kinds_never_coerced(self):
        # numpy would silently stringify np.asarray([1, "a"]); we must not.
        block = ColumnBlock.from_records([{"v": 1}, {"v": "a"}])
        assert block.columns["v"].dtype == object
        assert block.columns["v"].tolist() == [1, "a"]

    def test_bool_int_mix_stays_object(self):
        block = ColumnBlock.from_records([{"v": True}, {"v": 2}])
        assert block.columns["v"].dtype == object
        assert block.columns["v"].tolist() == [True, 2]

    def test_heterogeneous_schema_returns_none(self):
        assert ColumnBlock.from_records([{"a": 1}, {"b": 2}]) is None

    def test_empty_returns_none(self):
        assert ColumnBlock.from_records([]) is None

    def test_to_rows_roundtrip_python_scalars(self):
        records = _records(3)
        rows = ColumnBlock.from_records(records).to_rows()
        assert rows == records
        assert all(type(row["i"]) is int for row in rows)
        assert all(type(row["ok"]) is bool for row in rows)

    def test_size_bytes_tracks_json_order_of_magnitude(self):
        import json

        records = _records(50)
        block = ColumnBlock.from_records(records)
        exact = sum(
            len(json.dumps(r, default=str, separators=(",", ":"))) for r in records
        )
        assert exact * 0.5 <= block.size_bytes() <= exact * 2.0

    def test_concat_blocks(self):
        a = ColumnBlock.from_records(_records(3))
        b = ColumnBlock.from_records(_records(2, offset=3))
        merged = concat_blocks([a, b])
        assert merged.n == 5
        assert merged.columns["i"].tolist() == [0, 1, 2, 3, 4]

    def test_concat_schema_drift_returns_none(self):
        a = ColumnBlock.from_records([{"a": 1}])
        b = ColumnBlock.from_records([{"b": 1}])
        assert concat_blocks([a, b]) is None


class TestStorePacksBlocks:
    def test_append_packs_columns_per_extent(self):
        store = CosmosStore(extent_max_records=4)
        store.append("s", _records(10))
        blocks = [extent.columns for extent in store.stream("s").extents]
        assert len(blocks) == 3
        assert all(block is not None for block in blocks)
        assert [block.n for block in blocks] == [4, 4, 2]

    def test_heterogeneous_chunk_has_no_block(self):
        store = CosmosStore()
        store.append("s", [{"a": 1}, {"b": 2}])
        assert store.stream("s").extents[0].columns is None
        # Size accounting still works without a block.
        assert store.bytes_ingested > 0

    def test_version_bumps_on_mutations(self):
        store = CosmosStore()
        v0 = store.version
        store.append("s", _records(1), t=1.0)
        assert store.version > v0
        v1 = store.version
        store.expire_before("s", 2.0)
        assert store.version > v1

    def test_read_count_counts_scans(self):
        store = CosmosStore()
        store.append("s", _records(4))
        assert store.read_count == 0
        list(store.read("s"))
        list(store.read_where("s", lambda r: True))
        list(store.extents("s"))
        assert store.read_count == 3

    def test_read_copy_false_skips_defensive_copies(self):
        store = CosmosStore()
        store.append("s", _records(1))
        stored = store.stream("s").extents[0].records[0]
        assert next(store.read("s", copy=False)) is stored
        assert next(store.read("s")) is not stored

    def test_read_where_copy_false(self):
        store = CosmosStore()
        store.append("s", _records(2))
        rows = list(store.read_where("s", lambda r: r["i"] == 0, copy=False))
        assert rows[0] is store.stream("s").extents[0].records[0]


class TestExpressions:
    ROWS = [
        {"a": 1, "b": 10.0, "ok": True, "name": "x"},
        {"a": 2, "b": 20.0, "ok": False, "name": "y"},
        {"a": 3, "b": 5.0, "ok": True, "name": "x"},
    ]

    @pytest.fixture()
    def columns(self):
        return ColumnBlock.from_records(self.ROWS).columns

    @pytest.mark.parametrize(
        "expr",
        [
            col("a") == 2,
            col("a") != 2,
            col("a") < 2,
            col("a") <= 2,
            col("a") > 2,
            col("a") >= 2,
            col("ok"),
            ~col("ok"),
            col("ok") & (col("b") > 8.0),
            col("ok") | (col("a") == 2),
            col("a") + col("b") > 12,
            col("b") - col("a") < 10,
            col("a") * 2 >= 4,
            col("b") / 2 > 5,
            col("name") == "x",
            col("a").isin([1, 3]),
            lit(True),
            lit(False),
        ],
    )
    def test_row_and_column_evaluation_agree(self, expr, columns):
        per_row = [bool(expr(row)) for row in self.ROWS]
        vector = np.broadcast_to(
            np.asarray(expr.eval_columns(columns), dtype=bool), (len(self.ROWS),)
        )
        assert per_row == vector.tolist()

    def test_expr_tracks_referenced_columns(self):
        expr = col("ok") & (col("b") > 8.0)
        assert expr.columns == {"ok", "b"}
        assert lit(1).columns == frozenset()

    def test_arithmetic_values_agree(self, columns):
        expr = (col("a") + 1) * col("b")
        per_row = [expr(row) for row in self.ROWS]
        assert expr.eval_columns(columns).tolist() == per_row
