"""Tests for the SCOPE rowset engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cosmos.scope import RowSet, agg, extract
from repro.cosmos.store import CosmosStore


@pytest.fixture()
def rows():
    return RowSet(
        [
            {"pod": "p0", "rtt_us": 200.0, "ok": True},
            {"pod": "p0", "rtt_us": 300.0, "ok": True},
            {"pod": "p1", "rtt_us": 250.0, "ok": False},
            {"pod": "p1", "rtt_us": 3_000_150.0, "ok": True},
        ]
    )


class TestVerbs:
    def test_where(self, rows):
        assert len(rows.where(lambda r: r["ok"])) == 3

    def test_select_projection(self, rows):
        out = rows.select("pod").output()
        assert out[0] == {"pod": "p0"}

    def test_select_computed_column(self, rows):
        out = rows.select("pod", rtt_ms=lambda r: r["rtt_us"] / 1000).output()
        assert out[0] == {"pod": "p0", "rtt_ms": 0.2}

    def test_select_noop(self, rows):
        assert rows.select().output() == rows.output()

    def test_order_by(self, rows):
        ordered = rows.order_by("rtt_us")
        values = ordered.column("rtt_us")
        assert values == sorted(values)

    def test_order_by_desc(self, rows):
        values = rows.order_by("rtt_us", desc=True).column("rtt_us")
        assert values == sorted(values, reverse=True)

    def test_take(self, rows):
        assert len(rows.take(2)) == 2
        with pytest.raises(ValueError):
            rows.take(-1)

    def test_union(self, rows):
        assert len(rows.union(rows)) == 8

    def test_distinct(self, rows):
        assert len(rows.distinct("pod")) == 2
        with pytest.raises(ValueError):
            rows.distinct()

    def test_rowsets_are_immutable_through_verbs(self, rows):
        rows.where(lambda r: False)
        rows.order_by("rtt_us")
        assert len(rows) == 4

    def test_output_returns_copies(self, rows):
        out = rows.output()
        out[0]["pod"] = "tampered"
        assert rows.output()[0]["pod"] == "p0"

    def test_bool_and_iter(self, rows):
        assert rows
        assert not RowSet([])
        assert sum(1 for _ in rows) == 4


class TestGroupingAndAggregates:
    def test_group_by_aggregate(self, rows):
        out = (
            rows.group_by("pod")
            .aggregate(n=agg.count(), max_rtt=agg.max("rtt_us"))
            .order_by("pod")
            .output()
        )
        assert out == [
            {"pod": "p0", "n": 2, "max_rtt": 300.0},
            {"pod": "p1", "n": 2, "max_rtt": 3_000_150.0},
        ]

    def test_group_by_requires_keys(self, rows):
        with pytest.raises(ValueError):
            rows.group_by()

    def test_aggregate_requires_columns(self, rows):
        with pytest.raises(ValueError):
            rows.group_by("pod").aggregate()

    def test_count_if(self, rows):
        out = rows.group_by("pod").aggregate(
            ok=agg.count_if(lambda r: r["ok"])
        ).order_by("pod").output()
        assert [row["ok"] for row in out] == [2, 1]

    def test_sum_avg_min(self, rows):
        out = (
            rows.where(lambda r: r["pod"] == "p0")
            .group_by("pod")
            .aggregate(
                total=agg.sum("rtt_us"),
                mean=agg.avg("rtt_us"),
                low=agg.min("rtt_us"),
            )
            .output()[0]
        )
        assert out["total"] == 500.0
        assert out["mean"] == 250.0
        assert out["low"] == 200.0

    def test_percentile(self, rows):
        out = rows.group_by("pod").aggregate(
            p50=agg.percentile("rtt_us", 50)
        ).order_by("pod").output()
        assert out[0]["p50"] == 250.0

    def test_percentile_range_validated(self):
        with pytest.raises(ValueError):
            agg.percentile("x", 101)

    def test_ratio_drop_rate_shape(self, rows):
        """The §4.2 heuristic expressed as an aggregate."""
        drop_rate = agg.ratio(
            numerator=lambda r: r["rtt_us"] > 2.5e6,  # ~3 s probes
            denominator=lambda r: r["ok"],
        )
        out = rows.group_by("pod").aggregate(rate=drop_rate).order_by("pod").output()
        assert out[0]["rate"] == 0.0
        assert out[1]["rate"] == 1.0  # 1 three-second probe / 1 successful

    def test_ratio_empty_denominator_is_zero(self):
        rate = agg.ratio(lambda r: True, lambda r: False)
        assert RowSet([{"x": 1}]).group_by("x").aggregate(r=rate).output()[0]["r"] == 0.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_percentile_bounded_by_min_max(self, values):
        rows = RowSet([{"v": v} for v in values])
        out = rows.group_by("v").aggregate(p=agg.percentile("v", 50))
        for row in out:
            assert min(values) <= row["p"] <= max(values)


class TestExtract:
    def test_extract_reads_stream(self):
        store = CosmosStore()
        store.append("s", [{"a": 1}, {"a": 2}])
        assert extract(store, "s").column("a") == [1, 2]

    def test_extract_with_predicate_pushdown(self):
        store = CosmosStore()
        store.append("s", [{"a": i} for i in range(10)])
        assert len(extract(store, "s", lambda r: r["a"] >= 5)) == 5
