"""Row-path vs columnar-path parity for the SCOPE engine.

Every verb and every aggregator must produce identical rows in identical
order through both execution paths; these tests hold that contract,
including the edge cases (empty rowsets, all-failure windows, q=0/100
percentiles, empty ratio denominators) and a randomized property test.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cosmos.scope import RowSet, agg, col, extract, lit
from repro.cosmos.store import CosmosStore


def _approx_equal(a, b):
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-12)
    return a == b and type(a) is type(b)


def assert_same_output(row_result, col_result):
    """Both paths: same rows, same order, same keys, same value types."""
    assert len(row_result) == len(col_result)
    for row_row, col_row in zip(row_result, col_result):
        assert list(row_row) == list(col_row)
        for key in row_row:
            assert _approx_equal(row_row[key], col_row[key]), (
                key,
                row_row[key],
                col_row[key],
            )


RECORDS = [
    {
        "t": float(t),
        "src_dc": dc,
        "dst_dc": dc,
        "src_pod": pod,
        "dst_pod": (pod + shift) % 3,
        "success": (t + pod) % 7 != 0,
        "rtt_us": 100.0 + 17.3 * ((t * 31 + pod * 7) % 23) + (3.1e6 if (t + pod) % 11 == 0 else 0.0),
        "src": f"dc{dc}/p{pod}",
    }
    for t in range(0, 40)
    for dc in (0, 1)
    for pod in range(3)
    for shift in (0, 1)
]


def both_paths(records=RECORDS, extent_max_records=16):
    """The same data as a row-backed and a column-backed rowset."""
    row_set = RowSet(records)
    store = CosmosStore(extent_max_records=extent_max_records)
    store.append("s", records, t=0.0)
    col_set = extract(store, "s")
    assert col_set.is_columnar
    assert not row_set.is_columnar
    return row_set, col_set


ALL_AGGREGATES = dict(
    n=lambda: agg.count(),
    ok=lambda: agg.count_if(col("success")),
    total=lambda: agg.sum("rtt_us"),
    mean=lambda: agg.avg("rtt_us"),
    low=lambda: agg.min("rtt_us"),
    high=lambda: agg.max("rtt_us"),
    p0=lambda: agg.percentile("rtt_us", 0),
    p50=lambda: agg.percentile("rtt_us", 50),
    p99=lambda: agg.percentile("rtt_us", 99),
    p100=lambda: agg.percentile("rtt_us", 100),
    rate=lambda: agg.ratio(
        numerator=col("success") & (col("rtt_us") >= 2.5e6),
        denominator=col("success"),
    ),
)


class TestVerbParity:
    def test_where_expr(self):
        rows, cols = both_paths()
        expr = (col("success")) & (col("rtt_us") < 1e6) | (col("src_pod") == 2)
        assert_same_output(rows.where(expr).output(), cols.where(expr).output())

    def test_where_lambda_falls_back(self):
        rows, cols = both_paths()
        pred = lambda r: r["src_pod"] >= 1 and r["success"]  # noqa: E731
        filtered = cols.where(pred)
        assert not filtered.is_columnar
        assert_same_output(rows.where(pred).output(), filtered.output())

    def test_where_empty_result(self):
        rows, cols = both_paths()
        expr = col("rtt_us") < 0
        assert rows.where(expr).output() == cols.where(expr).output() == []

    def test_select_projection(self):
        rows, cols = both_paths()
        assert_same_output(
            rows.select("src_pod", "rtt_us").output(),
            cols.select("src_pod", "rtt_us").output(),
        )

    def test_select_computed_expr_and_lit(self):
        rows, cols = both_paths()
        kwargs = dict(rtt_ms=col("rtt_us") / 1000.0, window=lit(600.0))
        out_cols = cols.select("src_pod", **kwargs)
        assert out_cols.is_columnar
        assert_same_output(rows.select("src_pod", **kwargs).output(), out_cols.output())

    def test_select_lambda_falls_back(self):
        rows, cols = both_paths()
        fn = lambda r: r["rtt_us"] / 1000.0  # noqa: E731
        assert_same_output(
            rows.select("src_pod", rtt_ms=fn).output(),
            cols.select("src_pod", rtt_ms=fn).output(),
        )

    def test_order_by_multikey(self):
        rows, cols = both_paths()
        assert_same_output(
            rows.order_by("src_pod", "dst_pod", "t").output(),
            cols.order_by("src_pod", "dst_pod", "t").output(),
        )

    def test_order_by_desc_stability(self):
        # Ties on the sort keys must keep original order on both paths.
        rows, cols = both_paths()
        assert_same_output(
            rows.order_by("src_pod", desc=True).output(),
            cols.order_by("src_pod", desc=True).output(),
        )

    def test_order_by_string_key(self):
        rows, cols = both_paths()
        assert_same_output(
            rows.order_by("src", "t").output(), cols.order_by("src", "t").output()
        )

    def test_take(self):
        rows, cols = both_paths()
        assert_same_output(rows.take(7).output(), cols.take(7).output())
        assert_same_output(rows.take(0).output(), cols.take(0).output())

    def test_column(self):
        rows, cols = both_paths()
        assert rows.column("rtt_us") == cols.column("rtt_us")
        assert rows.column("src") == cols.column("src")

    def test_distinct(self):
        rows, cols = both_paths()
        assert_same_output(
            rows.distinct("src_pod", "dst_pod").output(),
            cols.distinct("src_pod", "dst_pod").output(),
        )

    def test_union(self):
        rows, cols = both_paths()
        assert_same_output(
            rows.union(rows).output(), cols.union(cols).output()
        )

    def test_join(self):
        rows, cols = both_paths()
        right_records = [{"src_pod": p, "label": f"pod-{p}"} for p in range(2)]
        right_rows = RowSet(right_records)
        assert_same_output(
            rows.join(right_rows, on=("src_pod",), how="left").output(),
            cols.join(right_rows, on=("src_pod",), how="left").output(),
        )

    def test_iteration_and_len(self):
        rows, cols = both_paths()
        assert len(rows) == len(cols)
        assert list(rows.output()) == list(cols.output())

    def test_output_returns_fresh_copies_on_both_paths(self):
        for rowset in both_paths():
            out = rowset.output()
            out[0]["src_pod"] = 999
            assert rowset.output()[0]["src_pod"] != 999


class TestAggregateParity:
    def test_every_aggregator(self):
        rows, cols = both_paths()
        row_out = rows.group_by("src_dc", "src_pod").aggregate(
            **{name: make() for name, make in ALL_AGGREGATES.items()}
        )
        col_out = cols.group_by("src_dc", "src_pod").aggregate(
            **{name: make() for name, make in ALL_AGGREGATES.items()}
        )
        assert col_out.is_columnar
        assert_same_output(row_out.output(), col_out.output())

    def test_group_order_matches_first_appearance(self):
        records = [
            {"k": key, "v": float(i)}
            for i, key in enumerate([3, 1, 3, 2, 1, 2, 0])
        ]
        rows, cols = both_paths(records)
        row_out = rows.group_by("k").aggregate(n=agg.count()).output()
        col_out = cols.group_by("k").aggregate(n=agg.count()).output()
        assert [r["k"] for r in row_out] == [3, 1, 2, 0]
        assert_same_output(row_out, col_out)

    def test_single_row_groups(self):
        records = [{"k": i, "v": float(i)} for i in range(5)]
        rows, cols = both_paths(records)
        assert_same_output(
            rows.group_by("k").aggregate(p=agg.percentile("v", 50)).output(),
            cols.group_by("k").aggregate(p=agg.percentile("v", 50)).output(),
        )

    def test_empty_rowset_grouping(self):
        rows, cols = both_paths()
        empty_expr = col("rtt_us") < 0
        row_empty = rows.where(empty_expr)
        col_empty = cols.where(empty_expr)
        assert (
            row_empty.group_by("src_pod").aggregate(n=agg.count()).output()
            == col_empty.group_by("src_pod").aggregate(n=agg.count()).output()
            == []
        )

    def test_all_failure_window_ratio_is_zero(self):
        records = [
            {"pod": p, "success": False, "rtt_us": 3.5e6}
            for p in (0, 1, 0, 1)
        ]
        rows, cols = both_paths(records)
        rate = lambda: agg.ratio(  # noqa: E731
            numerator=col("success") & (col("rtt_us") >= 2.5e6),
            denominator=col("success"),
        )
        row_out = rows.group_by("pod").aggregate(rate=rate()).output()
        col_out = cols.group_by("pod").aggregate(rate=rate()).output()
        assert [r["rate"] for r in row_out] == [0.0, 0.0]
        assert_same_output(row_out, col_out)

    def test_bool_sum_and_minmax(self):
        records = [{"k": i % 2, "flag": i % 3 == 0} for i in range(10)]
        rows, cols = both_paths(records)
        assert_same_output(
            rows.group_by("k")
            .aggregate(s=agg.sum("flag"), lo=agg.min("flag"), hi=agg.max("flag"))
            .output(),
            cols.group_by("k")
            .aggregate(s=agg.sum("flag"), lo=agg.min("flag"), hi=agg.max("flag"))
            .output(),
        )

    def test_int_column_aggregates_stay_int(self):
        records = [{"k": i % 2, "v": i} for i in range(9)]
        rows, cols = both_paths(records)
        row_out = rows.group_by("k").aggregate(
            s=agg.sum("v"), lo=agg.min("v"), hi=agg.max("v")
        ).output()
        col_out = cols.group_by("k").aggregate(
            s=agg.sum("v"), lo=agg.min("v"), hi=agg.max("v")
        ).output()
        assert_same_output(row_out, col_out)
        assert type(col_out[0]["s"]) is int

    def test_custom_callable_falls_back(self):
        rows, cols = both_paths()
        spread = lambda group: max(r["rtt_us"] for r in group) - min(  # noqa: E731
            r["rtt_us"] for r in group
        )
        assert_same_output(
            rows.group_by("src_pod").aggregate(spread=spread).output(),
            cols.group_by("src_pod").aggregate(spread=spread).output(),
        )

    def test_lambda_count_if_falls_back(self):
        rows, cols = both_paths()
        pred = lambda r: r["success"]  # noqa: E731
        assert_same_output(
            rows.group_by("src_pod").aggregate(ok=agg.count_if(pred)).output(),
            cols.group_by("src_pod").aggregate(ok=agg.count_if(pred)).output(),
        )

    def test_object_column_percentile_falls_back(self):
        # None in a numeric column -> object dtype -> row path, not a crash.
        records = [{"k": 0, "v": 1.0}, {"k": 0, "v": 2.0}, {"k": 1, "v": 3.0}]
        hetero = records + [{"k": 1, "v": 4.0}]
        store = CosmosStore()
        store.append("s", [dict(r, extra=None) for r in hetero], t=0.0)
        cols = extract(store, "s")
        assert cols.is_columnar  # None column packs as object
        out = cols.group_by("k").aggregate(p=agg.percentile("v", 50)).output()
        rows_out = (
            RowSet([dict(r, extra=None) for r in hetero])
            .group_by("k")
            .aggregate(p=agg.percentile("v", 50))
            .output()
        )
        assert_same_output(rows_out, out)

    @pytest.mark.parametrize("q", [0, 25, 50, 75, 99, 100])
    def test_percentile_edges(self, q):
        rows, cols = both_paths()
        assert_same_output(
            rows.group_by("src_pod").aggregate(p=agg.percentile("rtt_us", q)).output(),
            cols.group_by("src_pod").aggregate(p=agg.percentile("rtt_us", q)).output(),
        )


class TestRandomizedParity:
    @settings(deadline=None, max_examples=40)
    @given(
        data=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),  # pod
                st.integers(min_value=0, max_value=2),  # dst pod
                st.booleans(),  # success
                st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
            ),
            min_size=0,
            max_size=120,
        ),
        q=st.integers(min_value=0, max_value=100),
    )
    def test_podpair_shaped_query(self, data, q):
        records = [
            {"src_pod": a, "dst_pod": b, "success": ok, "rtt_us": rtt}
            for a, b, ok, rtt in data
        ]
        row_set = RowSet(records)
        store = CosmosStore(extent_max_records=7)
        store.append("s", records, t=0.0)
        col_set = extract(store, "s") if records else RowSet([])

        def query(rows):
            filtered = rows.where((col("src_pod") >= 1) | col("success"))
            if not filtered:
                return []
            return (
                filtered.group_by("src_pod", "dst_pod")
                .aggregate(
                    n=agg.count(),
                    ok=agg.count_if(col("success")),
                    p=agg.percentile("rtt_us", q),
                    total=agg.sum("rtt_us"),
                    rate=agg.ratio(
                        numerator=col("success") & (col("rtt_us") >= 2.5e6),
                        denominator=col("success"),
                    ),
                )
                .order_by("src_pod", "dst_pod")
                .take(50)
                .output()
            )

        assert_same_output(query(row_set), query(col_set))


class TestExtractColumnar:
    def test_extract_is_columnar_for_homogeneous_stream(self):
        store = CosmosStore(extent_max_records=3)
        store.append("s", [{"a": i, "b": float(i)} for i in range(10)], t=0.0)
        rows = extract(store, "s")
        assert rows.is_columnar
        assert rows.column("a") == list(range(10))

    def test_extract_falls_back_on_schema_drift(self):
        store = CosmosStore(extent_max_records=2)
        store.append("s", [{"a": 1}, {"a": 2}], t=0.0)
        store.append("s", [{"b": 3}, {"b": 4}], t=0.0)
        rows = extract(store, "s")
        assert not rows.is_columnar
        assert len(rows) == 4

    def test_extract_single_scan(self):
        store = CosmosStore()
        store.append("s", [{"a": i} for i in range(10)], t=0.0)
        before = store.read_count
        extract(store, "s", col("a") >= 5)
        assert store.read_count == before + 1

    def test_extract_expr_predicate_prunes_and_filters(self):
        store = CosmosStore(extent_max_records=2)
        store.append("s", [{"t": 10.0}, {"t": 20.0}], t=20.0)
        store.append("s", [{"t": 30.0}, {"t": 40.0}], t=40.0)
        rows = extract(store, "s", (col("t") >= 25.0), appended_since=25.0)
        assert rows.column("t") == [30.0, 40.0]
