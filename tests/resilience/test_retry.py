"""Tests for the seeded decorrelated-jitter retry policy."""

import pytest

from repro.resilience import RetryPolicy, derive_seed


class TestDeriveSeed:
    def test_stable_across_instances(self):
        assert derive_seed("srv0", "upload") == derive_seed("srv0", "upload")

    def test_distinct_components_get_distinct_streams(self):
        assert derive_seed("srv0", "upload") != derive_seed("srv0", "refresh")
        assert derive_seed("srv0", "upload") != derive_seed("srv1", "upload")

    def test_separator_prevents_concatenation_collisions(self):
        assert derive_seed("ab", "c") != derive_seed("a", "bc")

    def test_known_value_is_process_stable(self):
        # CRC32, not hash(): the value must never change between runs.
        import zlib

        assert derive_seed("x") == zlib.crc32(b"x")


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(0.0, 10.0)
        with pytest.raises(ValueError):
            RetryPolicy(10.0, 5.0)
        with pytest.raises(ValueError):
            RetryPolicy(1.0, 10.0, multiplier=0.5)


class TestJitteredBackoff:
    def test_delays_stay_within_envelope(self):
        policy = RetryPolicy(2.0, 60.0, seed=derive_seed("srv0", "test"))
        prev = policy.base_s
        for _ in range(50):
            delay = policy.next_delay()
            assert delay <= 60.0
            assert delay <= max(policy.base_s, prev * policy.multiplier)
            prev = max(policy.base_s, delay)

    def test_window_grows_from_base(self):
        policy = RetryPolicy(2.0, 1000.0, seed=1)
        first = policy.next_delay()
        # First draw is bounded by base * multiplier.
        assert policy.base_s <= first <= policy.base_s * policy.multiplier

    def test_per_call_cap_tightens_only(self):
        policy = RetryPolicy(10.0, 600.0, seed=3)
        for _ in range(10):
            policy.next_delay()  # grow the window
        assert policy.next_delay(cap_s=15.0) <= 15.0
        # A looser per-call cap never loosens the configured one.
        assert policy.next_delay(cap_s=10_000.0) <= 600.0

    def test_reset_returns_to_base_window(self):
        policy = RetryPolicy(2.0, 1000.0, seed=5)
        for _ in range(8):
            policy.next_delay()
        policy.reset()
        assert policy.attempts == 0
        assert policy.next_delay() <= policy.base_s * policy.multiplier

    def test_draws_are_recorded(self):
        policy = RetryPolicy(1.0, 10.0, seed=9)
        produced = [policy.next_delay() for _ in range(4)]
        produced.append(policy.jitter_period(100.0, 0.1))
        assert policy.draws == produced


class TestNoJitterControl:
    def test_degrades_to_truncated_exponential(self):
        policy = RetryPolicy(2.0, 100.0, multiplier=3.0, jitter=False)
        assert [policy.next_delay() for _ in range(5)] == [
            2.0,
            6.0,
            18.0,
            54.0,
            100.0,
        ]

    def test_identical_for_every_seed(self):
        a = RetryPolicy(2.0, 100.0, jitter=False, seed=1)
        b = RetryPolicy(2.0, 100.0, jitter=False, seed=999)
        assert [a.next_delay() for _ in range(6)] == [
            b.next_delay() for _ in range(6)
        ]


class TestJitterPeriod:
    def test_spread_stays_within_fraction(self):
        policy = RetryPolicy(1.0, 10.0, seed=42)
        for _ in range(100):
            period = policy.jitter_period(200.0, 0.1)
            assert 180.0 <= period <= 220.0

    def test_zero_fraction_is_exact_and_undrawn(self):
        policy = RetryPolicy(1.0, 10.0, seed=42)
        assert policy.jitter_period(200.0, 0.0) == 200.0
        assert policy.draws == []  # no RNG consumed: schedules stay aligned

    def test_fleet_decorrelates(self):
        # Sixteen "agents" starting in lockstep must not share a period.
        periods = {
            round(
                RetryPolicy(
                    30.0, 600.0, seed=derive_seed(f"srv{i}", "refresh")
                ).jitter_period(200.0, 0.1),
                6,
            )
            for i in range(16)
        }
        assert len(periods) == 16
