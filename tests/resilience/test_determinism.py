"""The determinism audit: every jitter/backoff draw is seed-derived.

Resilience randomness (refresh jitter, retry backoff) must come from
per-component ``random.Random`` streams seeded via :func:`derive_seed` —
never from the global RNG or a wall clock.  The audit runs the same
deployment twice under *different* ambient global-RNG states and asserts
bit-identical schedules, then replays one agent's stream standalone.
"""

import random

from repro.chaos.campaigns import run_campaign
from repro.core.agent.agent import AgentConfig
from repro.core.system import PingmeshSystem, PingmeshSystemConfig
from repro.netsim.topology import TopologySpec
from repro.resilience import RetryPolicy, derive_seed

_SPEC = TopologySpec(n_podsets=2, pods_per_podset=2, servers_per_pod=2)


def _draw_schedules(seed: int, duration_s: float = 500.0) -> dict:
    system = PingmeshSystem(
        PingmeshSystemConfig(
            specs=(_SPEC,),
            seed=seed,
            agent=AgentConfig(pinglist_refresh_s=120.0, upload_period_s=100.0),
        )
    )
    system.run_for(duration_s)
    return {
        server_id: {
            "refresh": list(agent.refresh_retry.draws),
            "upload": list(agent.uploader.retry.draws),
        }
        for server_id, agent in system.agents.items()
    }


class TestSeededStreams:
    def test_schedules_survive_ambient_rng_state(self):
        """Same seed, different global-RNG states: identical schedules.

        This is what makes a drill reproduce identically standalone and
        inside the full suite, where other tests have consumed arbitrary
        amounts of the global stream.
        """
        random.seed(12345)
        first = _draw_schedules(seed=11)
        random.seed(99999)
        random.random()  # perturb further: a different stream position
        second = _draw_schedules(seed=11)
        assert first == second

    def test_every_agent_drew_a_jittered_schedule(self):
        schedules = _draw_schedules(seed=11)
        assert schedules
        for server_id, draws in schedules.items():
            assert draws["refresh"], f"{server_id} never drew a refresh"

    def test_agents_do_not_share_a_stream(self):
        schedules = _draw_schedules(seed=11)
        first_draws = {draws["refresh"][0] for draws in schedules.values()}
        assert len(first_draws) == len(schedules)

    def test_standalone_replay_matches_the_deployed_stream(self):
        """An agent's in-system draws replay from (server_id, component)."""
        schedules = _draw_schedules(seed=11)
        server_id, draws = sorted(schedules.items())[0]
        config = AgentConfig(pinglist_refresh_s=120.0, upload_period_s=100.0)
        policy = RetryPolicy(
            config.refresh_retry_base_s,
            config.refresh_retry_cap_s,
            seed=derive_seed(server_id, "pinglist-refresh"),
        )
        replayed = [
            policy.jitter_period(
                config.pinglist_refresh_s, config.refresh_jitter_fraction
            )
            for _ in draws["refresh"]
        ]
        # A healthy run is all jittered steady-state periods, so the
        # standalone policy reproduces the deployed schedule exactly.
        assert replayed == draws["refresh"]


class TestCampaignDeterminism:
    def test_resilience_campaign_reproduces_exactly(self):
        first = run_campaign("controller-brownout", seed=4)
        second = run_campaign("controller-brownout", seed=4)
        assert first.summary() == second.summary()
        assert first.phases == second.phases
