"""Tests for the per-backend circuit breaker state machine."""

import pytest

from repro.resilience import BreakerState, CircuitBreaker, CircuitBreakerConfig


def _tripped(threshold=3, open_s=30.0):
    breaker = CircuitBreaker(
        CircuitBreakerConfig(failure_threshold=threshold, open_duration_s=open_s)
    )
    for i in range(threshold):
        breaker.record_failure(float(i))
    return breaker


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            CircuitBreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreakerConfig(open_duration_s=-1.0)
        with pytest.raises(ValueError):
            CircuitBreakerConfig(half_open_successes=0)


class TestTripping:
    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(CircuitBreakerConfig(failure_threshold=3))
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(2.0)

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(CircuitBreakerConfig(failure_threshold=3))
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        breaker.record_success(2.0)
        breaker.record_failure(3.0)
        breaker.record_failure(4.0)
        assert breaker.state is BreakerState.CLOSED

    def test_threshold_consecutive_failures_open(self):
        breaker = _tripped()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_count == 1
        assert not breaker.allow(10.0)


class TestHalfOpen:
    def test_open_duration_admits_one_probe(self):
        breaker = _tripped(open_s=30.0)
        assert not breaker.allow(20.0)
        assert breaker.allow(40.0)  # first request past the window: probe
        assert breaker.state is BreakerState.HALF_OPEN
        # A second concurrent request is refused while the probe is out.
        assert not breaker.allow(40.0)

    def test_probe_success_recloses(self):
        breaker = _tripped(open_s=30.0)
        assert breaker.allow(40.0)
        breaker.record_success(40.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(41.0)

    def test_probe_failure_reopens_for_another_window(self):
        breaker = _tripped(open_s=30.0)
        assert breaker.allow(40.0)
        breaker.record_failure(40.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_count == 2
        assert not breaker.allow(60.0)  # new window runs from 40.0
        assert breaker.allow(75.0)

    def test_reopened_breaker_trips_on_single_failure(self):
        # After HALF_OPEN, one failed probe reopens — no fresh threshold.
        breaker = _tripped()
        breaker.allow(40.0)
        breaker.record_failure(40.0)
        breaker.allow(75.0)
        breaker.record_failure(75.0)
        assert breaker.opened_count == 3


class TestTransitions:
    def test_transition_log_records_the_path(self):
        breaker = _tripped(open_s=30.0)
        breaker.allow(40.0)
        breaker.record_success(40.0)
        assert [state for _, state in breaker.transitions] == [
            BreakerState.OPEN,
            BreakerState.HALF_OPEN,
            BreakerState.CLOSED,
        ]

    def test_consecutive_failures_visible(self):
        breaker = CircuitBreaker()
        breaker.record_failure(0.0)
        assert breaker.consecutive_failures == 1
