"""Tests for the FRESH/STALE/FAIL_CLOSED staleness state machine."""

import pytest

from repro.resilience import (
    IllegalTransitionError,
    PinglistState,
    StalenessTracker,
)

LIMIT = 3  # the paper's MAX_CONTROLLER_FAILURES


class TestPaperRules:
    def test_starts_fresh(self):
        tracker = StalenessTracker()
        assert tracker.state is PinglistState.FRESH
        assert tracker.fresh and not tracker.stale and not tracker.fail_closed

    def test_first_failures_go_stale_not_closed(self):
        tracker = StalenessTracker()
        tracker.refresh_failed(10.0, 1, LIMIT)
        assert tracker.stale
        tracker.refresh_failed(20.0, 2, LIMIT)
        assert tracker.stale  # still probing the cached pinglist

    def test_third_failure_fails_closed(self):
        tracker = StalenessTracker()
        for n in (1, 2, 3):
            tracker.refresh_failed(10.0 * n, n, LIMIT)
        assert tracker.fail_closed
        assert tracker.transitions[-1][3] == "consecutive-failures"

    def test_404_fails_closed_from_fresh(self):
        tracker = StalenessTracker()
        tracker.pinglist_missing(5.0)
        assert tracker.fail_closed
        assert tracker.transitions[-1][3] == "pinglist-404"

    def test_404_fails_closed_from_stale(self):
        tracker = StalenessTracker()
        tracker.refresh_failed(10.0, 1, LIMIT)
        tracker.pinglist_missing(20.0)
        assert tracker.fail_closed

    def test_success_recovers_from_stale(self):
        tracker = StalenessTracker()
        tracker.refresh_failed(10.0, 1, LIMIT)
        tracker.refresh_succeeded(20.0)
        assert tracker.fresh

    def test_success_recovers_from_fail_closed(self):
        tracker = StalenessTracker()
        tracker.pinglist_missing(10.0)
        tracker.refresh_succeeded(100.0)
        assert tracker.fresh


class TestStructure:
    def test_same_state_is_a_silent_no_op(self):
        tracker = StalenessTracker()
        tracker.refresh_succeeded(1.0)  # FRESH -> FRESH
        tracker.refresh_failed(2.0, 1, LIMIT)
        tracker.refresh_failed(3.0, 2, LIMIT)  # STALE -> STALE
        assert len(tracker.transitions) == 1

    def test_connect_failure_after_fail_closed_stays_closed(self):
        # 404 fail-closed, then the controller goes dark: the agent must
        # stay closed (never "reopen" to STALE on new connect failures).
        tracker = StalenessTracker()
        tracker.pinglist_missing(1.0)
        tracker.refresh_failed(2.0, 1, LIMIT)
        assert tracker.fail_closed
        assert tracker.transitions[-1][3] == "pinglist-404"

    def test_illegal_transition_raises(self):
        tracker = StalenessTracker()
        tracker.pinglist_missing(1.0)
        with pytest.raises(IllegalTransitionError):
            tracker._move(2.0, PinglistState.STALE, "forced")

    def test_transition_log_carries_times_and_reasons(self):
        tracker = StalenessTracker()
        tracker.refresh_failed(10.0, 1, LIMIT)
        tracker.refresh_succeeded(30.0)
        assert tracker.transitions == [
            (10.0, PinglistState.FRESH, PinglistState.STALE, "refresh-failure"),
            (30.0, PinglistState.STALE, PinglistState.FRESH, "refresh-success"),
        ]
