"""Tests for the bounded upload spool (FIFO of failed batches)."""

import pytest

from repro.resilience import SpooledBatch, UploadSpool


def _batch(n, t=0.0, start=0):
    return SpooledBatch(
        records=[{"i": start + i} for i in range(n)], spooled_t=t
    )


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            UploadSpool(cap_records=-1)

    def test_empty_spool_is_falsy(self):
        spool = UploadSpool()
        assert not spool
        assert spool.records == 0
        assert spool.peek_oldest() is None

    def test_push_peek_pop_fifo(self):
        spool = UploadSpool(cap_records=100)
        spool.push(_batch(3, t=1.0))
        spool.push(_batch(2, t=2.0, start=3))
        assert spool
        assert spool.records == 5
        assert spool.batches == 2
        assert spool.peek_oldest().spooled_t == 1.0
        oldest = spool.pop_oldest()
        assert len(oldest.records) == 3
        assert spool.records == 2


class TestEviction:
    def test_oldest_batches_evicted_first(self):
        spool = UploadSpool(cap_records=5)
        spool.push(_batch(3, t=1.0))
        evicted = spool.push(_batch(4, t=2.0, start=3))
        # The old 3-record batch made room for the newer 4.
        assert [r["i"] for r in evicted] == [0, 1, 2]
        assert spool.records == 4
        assert spool.records_evicted == 3
        assert spool.peek_oldest().spooled_t == 2.0

    def test_oversized_batch_keeps_its_newest_records(self):
        spool = UploadSpool(cap_records=3)
        evicted = spool.push(_batch(5, t=1.0))
        assert [r["i"] for r in evicted] == [0, 1]
        assert [r["i"] for r in spool.peek_oldest().records] == [2, 3, 4]

    def test_records_never_exceed_cap(self):
        spool = UploadSpool(cap_records=10)
        for i in range(20):
            spool.push(_batch(3, t=float(i), start=3 * i))
            assert spool.records <= 10

    def test_conservation_under_churn(self):
        spool = UploadSpool(cap_records=7)
        pushed = 0
        popped = 0
        for i in range(15):
            pushed += 3
            spool.push(_batch(3, t=float(i)))
            if i % 4 == 3 and spool:
                popped += len(spool.pop_oldest().records)
        assert pushed == spool.records + spool.records_evicted + popped
