"""Tenant credit-ledger tests: the conservation law under every edge."""

import pytest

from repro.broker import TenantAccount, TenantQuota


@pytest.fixture()
def account():
    return TenantAccount("acme", TenantQuota(credits_per_window=100, window_s=60.0))


class TestTenantAccount:
    def test_opens_with_one_window_grant(self, account):
        assert account.balance == 100
        assert account.granted == 100
        assert account.conserved()

    def test_debit_within_balance(self, account):
        assert account.try_debit(40, t=0.0)
        assert account.balance == 60
        assert account.debited == 40
        assert account.conserved()

    def test_debit_past_balance_refused_without_side_effects(self, account):
        assert not account.try_debit(101, t=0.0)
        assert account.balance == 100
        assert account.debited == 0
        assert account.conserved()

    def test_zero_credit_tenant_can_never_debit(self):
        broke = TenantAccount("broke", TenantQuota(credits_per_window=0))
        assert not broke.try_debit(1, t=0.0)
        # Even across a window boundary: the refill grants another zero.
        assert not broke.try_debit(1, t=10_000.0)
        assert broke.balance == 0
        assert broke.conserved()

    def test_refill_is_top_up_not_carry_over(self, account):
        account.try_debit(70, t=0.0)
        account.refill(60.0)
        # The unspent 30 expired; a fresh 100 landed.
        assert account.balance == 100
        assert account.expired == 30
        assert account.granted == 200
        assert account.conserved()

    def test_refill_before_window_boundary_is_a_noop(self, account):
        account.try_debit(10, t=0.0)
        account.refill(59.9)
        assert account.balance == 90
        assert account.expired == 0

    def test_refill_across_many_quiet_windows_grants_once(self, account):
        """Loop-free catch-up: N skipped windows leave the same ledger as
        N single steps — one expiry of the old balance, one fresh grant."""
        account.try_debit(25, t=0.0)
        account.refill(60.0 * 7 + 5.0)
        assert account.window_start == 60.0 * 7
        assert account.balance == 100
        assert account.expired == 75
        assert account.conserved()

    def test_debit_refills_first(self, account):
        account.try_debit(100, t=0.0)
        assert account.balance == 0
        # A debit in the next window sees the fresh grant.
        assert account.try_debit(100, t=61.0)
        assert account.balance == 0
        assert account.conserved()

    def test_refund_returns_credits(self, account):
        account.try_debit(50, t=0.0)
        account.refund(20)
        assert account.balance == 70
        assert account.refunded == 20
        assert account.conserved()

    def test_refund_cannot_exceed_debits(self, account):
        account.try_debit(10, t=0.0)
        with pytest.raises(ValueError):
            account.refund(11)

    def test_negative_amounts_rejected(self, account):
        with pytest.raises(ValueError):
            account.try_debit(-1, t=0.0)
        with pytest.raises(ValueError):
            account.refund(-1)

    def test_ledger_snapshot(self, account):
        account.try_debit(30, t=0.0)
        account.refund(5)
        ledger = account.ledger()
        assert ledger == {
            "tenant": "acme",
            "granted": 100,
            "debited": 30,
            "refunded": 5,
            "expired": 0,
            "balance": 75,
        }


class TestTenantQuota:
    def test_rejects_negative_credits(self):
        with pytest.raises(ValueError):
            TenantQuota(credits_per_window=-1)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            TenantQuota(window_s=0.0)
