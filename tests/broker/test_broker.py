"""Broker admission, scheduling, and lifecycle tests on a live system."""

import pytest

from repro.broker import (
    AdmissionConfig,
    BrokerConfig,
    MeasurementBroker,
    RequestState,
    TenantQuota,
)
from repro.core.agent.agent import AgentConfig
from repro.core.dsa.pipeline import DsaConfig
from repro.core.system import PingmeshSystem, PingmeshSystemConfig
from repro.netsim.topology import TopologySpec

_SPEC = TopologySpec(n_podsets=2, pods_per_podset=2, servers_per_pod=4)
_FAST_DSA = DsaConfig(ingestion_delay_s=0.0, near_real_time_period_s=300.0)


def _system(seed: int = 0) -> PingmeshSystem:
    return PingmeshSystem(
        PingmeshSystemConfig(
            specs=(_SPEC,),
            seed=seed,
            dsa=_FAST_DSA,
            agent=AgentConfig(pinglist_refresh_s=200.0, upload_period_s=120.0),
        )
    )


@pytest.fixture()
def system():
    return _system()


@pytest.fixture()
def broker(system):
    b = MeasurementBroker(system)
    b.register_tenant("acme", TenantQuota(credits_per_window=10_000))
    system.start()
    return b


class TestAdmission:
    def test_unknown_tenant_rejected(self, broker):
        channel = broker.submit("nobody", src="dc:0", dst="dc:0")
        assert channel.state is RequestState.REJECTED
        assert channel.reject_reason == "unknown-tenant"

    def test_unknown_kind_raises(self, broker):
        with pytest.raises(ValueError):
            broker.submit("acme", kind="teleport")

    def test_bad_selector_rejected(self, broker):
        channel = broker.submit("acme", src="galaxy:andromeda", dst="dc:0")
        assert channel.state is RequestState.REJECTED
        assert channel.reject_reason == "bad-target"

    def test_unknown_server_pair_rejected(self, broker):
        channel = broker.submit("acme", pairs=[("ghost-1", "ghost-2")])
        assert channel.state is RequestState.REJECTED
        assert channel.reject_reason == "bad-target"

    def test_empty_target_rejected(self, broker):
        server = broker.system.topology.dc(0).servers[0].device_id
        channel = broker.submit(
            "acme", src=f"server:{server}", dst=f"server:{server}"
        )
        assert channel.state is RequestState.REJECTED
        assert channel.reject_reason == "empty-target"

    def test_zero_credit_tenant_rejected_not_silently(self, broker):
        broker.register_tenant("broke", TenantQuota(credits_per_window=0))
        channel = broker.submit("broke", src="dc:0", dst="dc:0")
        assert channel.state is RequestState.REJECTED
        assert channel.reject_reason == "insufficient-credits"
        account = broker.accounts["broke"]
        assert account.requests_rejected == 1
        assert account.conserved()

    def test_credits_refill_across_windows_readmit(self, system):
        broker = MeasurementBroker(system)
        broker.register_tenant(
            "monthly", TenantQuota(credits_per_window=20, window_s=100.0)
        )
        system.start()
        a, b = (s.device_id for s in system.topology.dc(0).servers[:2])
        pair = [(a, b)]
        first = broker.submit("monthly", pairs=pair, probes_per_pair=8, t=0.0)
        assert first.state is RequestState.ADMITTED  # 8 credits
        second = broker.submit("monthly", pairs=pair, probes_per_pair=8, t=1.0)
        assert second.state is RequestState.ADMITTED  # 16 credits
        third = broker.submit("monthly", pairs=pair, probes_per_pair=8, t=2.0)
        assert third.state is RequestState.REJECTED  # 24 > 20
        assert third.reject_reason == "insufficient-credits"
        # Next window: the refill re-admits the same ask.
        fourth = broker.submit("monthly", pairs=pair, probes_per_pair=8, t=101.0)
        assert fourth.state is RequestState.ADMITTED
        account = broker.accounts["monthly"]
        assert account.expired == 4  # the unspent tail of window one
        assert account.conserved()

    def test_oversized_burst_truncated_not_rejected(self, broker):
        """A burst past the caps is clamped and marked, never bounced:
        probes-per-pair over the cap and a cross product over the pair
        cap both land as a truncated admission, debited at clamp size."""
        channel = broker.submit(
            "acme", src="dc:0", dst="dc:0", probes_per_pair=99
        )
        assert channel.state is RequestState.ADMITTED
        assert channel.truncated
        cfg = broker.admission
        assert channel.probes_admitted <= (
            cfg.max_pairs_per_request * cfg.max_probes_per_pair
        )
        assert channel.probes_requested > channel.probes_admitted
        account = broker.accounts["acme"]
        assert account.debited == channel.probes_admitted
        assert account.conserved()

    def test_truncated_burst_terminates_as_truncated(self, broker):
        channel = broker.submit(
            "acme", src="dc:0", dst="dc:0", probes_per_pair=99
        )
        broker.system.run_for(1200.0)
        assert channel.state is RequestState.TRUNCATED
        assert channel.probes_launched == channel.probes_admitted

    def test_inflight_cap_sheds_load(self, system):
        config = BrokerConfig(admission=AdmissionConfig(max_inflight_requests=1))
        broker = MeasurementBroker(system, config)
        broker.register_tenant("acme", TenantQuota(credits_per_window=10_000))
        system.start()
        a, b, c = (s.device_id for s in system.topology.dc(0).servers[:3])
        first = broker.submit("acme", pairs=[(a, b)])
        assert first.state is RequestState.ADMITTED
        second = broker.submit("acme", pairs=[(a, c)])
        assert second.state is RequestState.REJECTED
        assert second.reject_reason == "broker-overloaded"

    def test_fleet_degraded_fails_closed_for_bursts_only(self, broker):
        system = broker.system
        for dip in list(system.controller.replicas):
            system.controller.fail_replica(dip)
        burst = broker.submit("acme", src="dc:0", dst="dc:0")
        assert burst.state is RequestState.REJECTED
        assert burst.reject_reason == "fleet-degraded"
        read = broker.submit("acme", kind="scope")
        assert read.state is RequestState.COMPLETED

    def test_per_request_ports_live_in_the_broker_range(self, broker):
        cfg = broker.admission
        ports = {cfg.dst_port_for(rid) for rid in range(5000)}
        assert min(ports) >= cfg.port_base
        assert max(ports) < cfg.port_base + cfg.port_span

    def test_double_attach_refused(self, broker):
        with pytest.raises(RuntimeError):
            MeasurementBroker(broker.system)

    def test_pair_expansion_is_deterministic(self, broker):
        one = broker._expand_pairs(7, "dc:0", "dc:0", None)
        two = broker._expand_pairs(7, "dc:0", "dc:0", None)
        assert one == two


class TestLifecycle:
    def test_burst_completes_with_exact_ledger(self, broker):
        channel = broker.submit("acme", src="podset:0/0", dst="podset:0/1")
        broker.system.run_for(120.0)
        assert channel.state is RequestState.COMPLETED
        assert channel.probes_launched == channel.probes_admitted
        assert channel.probes_completed == channel.probes_launched
        assert channel.successes + channel.failures == channel.probes_completed
        assert channel.latency_s > 0
        assert broker.probes_launched == broker.probes_delivered

    def test_deadline_times_out_and_refunds(self, system):
        broker = MeasurementBroker(system)
        broker.register_tenant("acme", TenantQuota(credits_per_window=100))
        # No system.start(): no rounds ever run, so nothing launches.
        a, b = (s.device_id for s in system.topology.dc(0).servers[:2])
        channel = broker.submit(
            "acme", pairs=[(a, b)], probes_per_pair=4, deadline_s=50.0, t=0.0
        )
        assert channel.state is RequestState.ADMITTED
        account = broker.accounts["acme"]
        assert account.debited == 4
        broker.tick(t=60.0)
        assert channel.state is RequestState.TIMED_OUT
        assert channel.probes_launched == 0
        assert account.refunded == 4
        assert account.balance == 100
        assert account.conserved()

    def test_deadline_with_partial_results_truncates(self, broker):
        system = broker.system
        src = system.topology.dc(0).servers[0].device_id
        # One source serves one probe per work item per round: 8 pairs x 4
        # probes with a two-round deadline cannot finish.
        channel = broker.submit(
            "acme",
            src=f"server:{src}",
            dst="podset:0/1",
            probes_per_pair=4,
            deadline_s=25.0,
        )
        system.run_for(120.0)  # housekeeping tick fires at ~60 s
        assert channel.state is RequestState.TRUNCATED
        assert 0 < channel.probes_launched < channel.probes_admitted
        account = broker.accounts["acme"]
        assert account.refunded == channel.probes_admitted - channel.probes_launched
        assert account.conserved()

    def test_finished_channel_refuses_a_second_terminal(self, broker):
        channel = broker.submit("acme", kind="scope")
        assert channel.done
        with pytest.raises(RuntimeError):
            channel.finish(1.0, RequestState.COMPLETED)

    def test_concurrent_tenants_one_shard(self, system):
        """Several tenants bursting into the same (dc, podset) shard all
        complete, with per-request attribution intact and every ledger
        conserved — nothing cross-credits between tenants."""
        broker = MeasurementBroker(system)
        for i in range(4):
            broker.register_tenant(f"t{i}", TenantQuota(credits_per_window=500))
        system.start()
        channels = [
            broker.submit(f"t{i}", src="podset:0/0", dst="podset:0/0")
            for i in range(4)
        ]
        system.run_for(300.0)
        for channel in channels:
            assert channel.state is RequestState.COMPLETED
            assert channel.probes_completed == channel.probes_admitted
        for i in range(4):
            account = broker.accounts[f"t{i}"]
            assert account.debited == channels[i].probes_admitted
            assert account.probes_launched == channels[i].probes_launched
            assert account.conserved()
        assert broker.probes_launched == broker.probes_delivered
        assert broker.probes_launched == sum(c.probes_launched for c in channels)


class TestReadQueries:
    def test_scope_query_summarizes_store(self, broker):
        broker.system.run_for(700.0)  # past an upload period: rows exist
        channel = broker.submit("acme", kind="scope", params={"since_s": 700.0})
        assert channel.state is RequestState.COMPLETED
        assert channel.rows, "expected per-DC summary rows"
        row = channel.rows[0]
        assert row["probes"] > 0
        assert 0.0 <= row["drop_rate"] <= 1.0

    def test_stream_query_reads_recent_windows(self, broker):
        broker.system.run_for(300.0)
        channel = broker.submit("acme", kind="stream", params={"windows": 3})
        assert channel.state is RequestState.COMPLETED
        assert channel.rows
        assert channel.rows[0]["probes"] > 0

    def test_read_queries_cost_one_credit(self, broker):
        account = broker.accounts["acme"]
        before = account.balance
        broker.submit("acme", kind="scope")
        assert account.balance == before - broker.admission.read_query_cost
