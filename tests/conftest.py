"""Shared test configuration.

Hypothesis's per-example deadline is disabled: the property tests build
topologies and fabrics whose first-example cost is dominated by one-time
construction, which trips wall-clock deadlines on loaded CI machines
without indicating any regression.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
