"""Tests for the Service Manager's restart supervision."""

import pytest

from repro.autopilot.service_manager import ServiceManager
from repro.autopilot.shared_service import SharedService
from repro.netsim.simclock import SECONDS_PER_DAY, EventQueue, SimClock


@pytest.fixture()
def queue():
    return EventQueue(SimClock())


@pytest.fixture()
def sm(queue):
    manager = ServiceManager(
        queue, restart_delay_s=30.0, max_restarts_per_day=3, sweep_period_s=60.0
    )
    manager.start()
    return manager


def _crashed_service(name="svc", server="srv0"):
    service = SharedService(name, server)
    service.start(now=0.0)
    service.terminate("memory cap exceeded: 90.0 MB > 80.0 MB")
    return service


class TestRestart:
    def test_terminated_service_restarted_after_delay(self, queue, sm):
        service = _crashed_service()
        sm.supervise(service)
        queue.run_for(60.0)  # sweep notices
        assert not service.running
        queue.run_for(30.0)  # restart fires
        assert service.running
        assert len(sm.restarts) == 1
        assert "memory cap" in sm.restarts[0].reason

    def test_deliberate_stop_not_restarted(self, queue, sm):
        service = SharedService("svc", "srv0")
        service.start(now=0.0)
        service.stop()
        sm.supervise(service)
        queue.run_for(600.0)
        assert not service.running
        assert sm.restarts == []

    def test_running_service_untouched(self, queue, sm):
        service = SharedService("svc", "srv0")
        service.start(now=0.0)
        sm.supervise(service)
        queue.run_for(600.0)
        assert sm.restarts == []

    def test_no_duplicate_restart_scheduling(self, queue, sm):
        service = _crashed_service()
        sm.supervise(service)
        # Several sweeps happen before the restart delay elapses — the
        # instance must still restart exactly once.
        queue.run_for(300.0)
        assert len(sm.restarts) == 1


class TestCrashLoopBudget:
    def test_budget_exhaustion_leaves_service_down(self, queue, sm):
        service = _crashed_service()
        sm.supervise(service)
        for _ in range(10):
            queue.run_for(120.0)
            if service.running:
                service.terminate("crashed again")
        assert len(sm.restarts) == 3  # max_restarts_per_day
        assert not service.running
        assert sm.crash_looping(queue.clock.now) == [service]

    def test_budget_replenishes_next_day(self, queue, sm):
        service = _crashed_service()
        sm.supervise(service)
        for _ in range(10):
            queue.run_for(120.0)
            if service.running:
                service.terminate("crashed again")
        assert len(sm.restarts) == 3
        queue.run_for(SECONDS_PER_DAY)
        assert service.running  # restarted once the day rolled over
        assert len(sm.restarts) == 4

    def test_budgets_are_per_instance(self, queue, sm):
        bad = _crashed_service(server="srv0")
        other = _crashed_service(server="srv1")
        sm.supervise_all([bad, other])
        queue.run_for(120.0)
        assert bad.running and other.running
        assert len(sm.restarts) == 2
        assert sm.restarts_in_last_day(bad, queue.clock.now) == 1


class TestValidation:
    def test_constructor_validation(self, queue):
        with pytest.raises(ValueError):
            ServiceManager(queue, restart_delay_s=-1)
        with pytest.raises(ValueError):
            ServiceManager(queue, max_restarts_per_day=0)
        with pytest.raises(ValueError):
            ServiceManager(queue, sweep_period_s=0)

    def test_double_start_rejected(self, queue):
        manager = ServiceManager(queue)
        manager.start()
        with pytest.raises(RuntimeError):
            manager.start()

    def test_supervised_count(self, queue, sm):
        sm.supervise_all([SharedService("a", "s0"), SharedService("b", "s0")])
        assert sm.supervised_count == 2
