"""Tests for the Watchdog Service."""

import pytest

from repro.autopilot.watchdog import HealthStatus, WatchdogService
from repro.netsim.simclock import EventQueue, SimClock


@pytest.fixture()
def queue():
    return EventQueue(SimClock())


def _always(status, detail=""):
    return lambda: (status, detail)


class TestWatchdogService:
    def test_periodic_sweep_updates_latest(self, queue):
        service = WatchdogService(queue, check_period_s=60.0)
        service.register("pinglist-fresh", _always(HealthStatus.OK))
        service.start()
        queue.run_for(120.0)
        report = service.latest("pinglist-fresh")
        assert report.status == HealthStatus.OK
        assert report.t == 120.0

    def test_error_history_accumulates(self, queue):
        service = WatchdogService(queue, check_period_s=60.0)
        service.register("data-reported", _always(HealthStatus.ERROR, "no upload"))
        service.start()
        queue.run_for(180.0)
        assert len(service.error_history) == 3
        assert service.error_history[0].detail == "no upload"

    def test_raising_check_becomes_error(self, queue):
        service = WatchdogService(queue)

        def broken():
            raise RuntimeError("check bug")

        service.register("broken", broken)
        report = service.run_once()["broken"]
        assert report.status == HealthStatus.ERROR
        assert "check bug" in report.detail

    def test_overall_status_is_worst(self, queue):
        service = WatchdogService(queue)
        service.register("a", _always(HealthStatus.OK))
        service.register("b", _always(HealthStatus.WARNING))
        service.run_once()
        assert service.overall_status() == HealthStatus.WARNING
        service.register("c", _always(HealthStatus.ERROR))
        service.run_once()
        assert service.overall_status() == HealthStatus.ERROR

    def test_overall_ok_when_nothing_ran(self, queue):
        assert WatchdogService(queue).overall_status() == HealthStatus.OK

    def test_duplicate_registration_rejected(self, queue):
        service = WatchdogService(queue)
        service.register("x", _always(HealthStatus.OK))
        with pytest.raises(ValueError):
            service.register("x", _always(HealthStatus.OK))

    def test_double_start_rejected(self, queue):
        service = WatchdogService(queue)
        service.start()
        with pytest.raises(RuntimeError):
            service.start()

    def test_invalid_period_rejected(self, queue):
        with pytest.raises(ValueError):
            WatchdogService(queue, check_period_s=-1)

    def test_watchdog_names_sorted(self, queue):
        service = WatchdogService(queue)
        service.register("z", _always(HealthStatus.OK))
        service.register("a", _always(HealthStatus.OK))
        assert service.watchdog_names() == ["a", "z"]
