"""Tests for the Perfcounter Aggregator."""

import pytest

from repro.autopilot.perfcounter import PerfcounterAggregator
from repro.netsim.simclock import EventQueue, SimClock


@pytest.fixture()
def queue():
    return EventQueue(SimClock())


def _static_producer(values):
    return lambda t: dict(values)


class TestCollection:
    def test_collects_every_period(self, queue):
        pa = PerfcounterAggregator(queue, collection_period_s=300.0)
        pa.register_producer("srv0", _static_producer({"p99_us": 500.0}))
        pa.start()
        queue.run_for(1500.0)
        series = pa.series("srv0", "p99_us")
        assert [s.t for s in series] == [300.0, 600.0, 900.0, 1200.0, 1500.0]
        assert pa.collections_run == 5

    def test_five_minute_default_matches_paper(self, queue):
        assert PerfcounterAggregator(queue).collection_period_s == 300.0

    def test_latest(self, queue):
        pa = PerfcounterAggregator(queue, collection_period_s=100.0)
        ticker = {"n": 0}

        def producer(t):
            ticker["n"] += 1
            return {"count": float(ticker["n"])}

        pa.register_producer("srv0", producer)
        pa.start()
        queue.run_for(300.0)
        assert pa.latest("srv0", "count").value == 3.0
        assert pa.latest("srv0", "missing") is None

    def test_broken_producer_does_not_stop_collection(self, queue):
        pa = PerfcounterAggregator(queue, collection_period_s=100.0)

        def broken(t):
            raise RuntimeError("producer crashed")

        pa.register_producer("bad", broken)
        pa.register_producer("good", _static_producer({"x": 1.0}))
        pa.start()
        queue.run_for(200.0)
        assert len(pa.series("good", "x")) == 2
        assert pa.series("bad", "x") == []

    def test_unregister_stops_future_samples(self, queue):
        pa = PerfcounterAggregator(queue, collection_period_s=100.0)
        pa.register_producer("srv0", _static_producer({"x": 1.0}))
        pa.start()
        queue.run_for(100.0)
        pa.unregister_producer("srv0")
        queue.run_for(200.0)
        assert len(pa.series("srv0", "x")) == 1
        assert pa.producer_count == 0

    def test_double_start_rejected(self, queue):
        pa = PerfcounterAggregator(queue)
        pa.start()
        with pytest.raises(RuntimeError):
            pa.start()

    def test_invalid_period_rejected(self, queue):
        with pytest.raises(ValueError):
            PerfcounterAggregator(queue, collection_period_s=0)

    def test_counters_of(self, queue):
        pa = PerfcounterAggregator(queue, collection_period_s=100.0)
        pa.register_producer("srv0", _static_producer({"b": 1.0, "a": 2.0}))
        pa.start()
        queue.run_for(100.0)
        assert pa.counters_of("srv0") == ["a", "b"]


class TestAggregation:
    @pytest.fixture()
    def populated(self, queue):
        pa = PerfcounterAggregator(queue, collection_period_s=100.0)
        for i, value in enumerate([1.0, 2.0, 3.0, 10.0]):
            pa.register_producer(f"srv{i}", _static_producer({"drop_rate": value}))
        pa.start()
        queue.run_for(100.0)
        return pa

    def test_mean(self, populated):
        assert populated.aggregate_latest("drop_rate", "mean") == 4.0

    def test_max_min(self, populated):
        assert populated.aggregate_latest("drop_rate", "max") == 10.0
        assert populated.aggregate_latest("drop_rate", "min") == 1.0

    def test_percentile(self, populated):
        assert populated.aggregate_latest("drop_rate", "percentile", q=50) == 2.5

    def test_percentile_requires_q(self, populated):
        with pytest.raises(ValueError):
            populated.aggregate_latest("drop_rate", "percentile")

    def test_unknown_aggregation_rejected(self, populated):
        with pytest.raises(ValueError):
            populated.aggregate_latest("drop_rate", "median-ish")

    def test_missing_counter_returns_none(self, populated):
        assert populated.aggregate_latest("nothing") is None


class TestCollectionErrorAccounting:
    """A swallowed producer exception must leave a visible trace."""

    def test_broken_producer_increments_collection_errors(self, queue):
        pa = PerfcounterAggregator(queue, collection_period_s=100.0)

        def broken(t):
            raise RuntimeError("producer crashed")

        pa.register_producer("bad", broken)
        pa.register_producer("good", _static_producer({"x": 1.0}))
        pa.start()
        queue.run_for(300.0)
        assert pa.collections_run == 3
        assert pa.collection_errors == 3
        assert "bad" in pa.last_collection_error
        assert "producer crashed" in pa.last_collection_error

    def test_healthy_sweeps_record_no_errors(self, queue):
        pa = PerfcounterAggregator(queue, collection_period_s=100.0)
        pa.register_producer("good", _static_producer({"x": 1.0}))
        pa.start()
        queue.run_for(300.0)
        assert pa.collection_errors == 0
        assert pa.last_collection_error is None
