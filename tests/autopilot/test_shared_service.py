"""Tests for the shared-service framework and resource caps."""

import pytest

from repro.autopilot.shared_service import (
    ResourceBudgetExceeded,
    ResourceUsage,
    SharedService,
)


class TestResourceUsage:
    def test_cpu_accumulates(self):
        usage = ResourceUsage()
        usage.charge_cpu(1.0)
        usage.charge_cpu(0.5)
        assert usage.cpu_seconds == 1.5

    def test_negative_charges_rejected(self):
        usage = ResourceUsage()
        with pytest.raises(ValueError):
            usage.charge_cpu(-1.0)
        with pytest.raises(ValueError):
            usage.set_memory(-1.0)
        with pytest.raises(ValueError):
            usage.charge_bytes(-1)

    def test_peak_memory_watermark(self):
        usage = ResourceUsage()
        usage.set_memory(40.0)
        usage.set_memory(45.0)
        usage.set_memory(30.0)
        assert usage.memory_mb == 30.0
        assert usage.peak_memory_mb == 45.0

    def test_cpu_utilization(self):
        usage = ResourceUsage(started_at=100.0)
        usage.charge_cpu(2.0)
        assert usage.cpu_utilization(now=300.0) == pytest.approx(0.01)

    def test_cpu_utilization_before_start_is_zero(self):
        usage = ResourceUsage(started_at=100.0)
        assert usage.cpu_utilization(now=100.0) == 0.0


class TestSharedService:
    def test_lifecycle(self):
        service = SharedService("svc", "srv0")
        service.start(now=10.0)
        assert service.running
        service.stop()
        assert not service.running

    def test_double_start_rejected(self):
        service = SharedService("svc", "srv0")
        service.start()
        with pytest.raises(RuntimeError):
            service.start()

    def test_stop_when_not_running_is_noop(self):
        SharedService("svc", "srv0").stop()

    def test_invalid_caps_rejected(self):
        with pytest.raises(ValueError):
            SharedService("svc", "srv0", memory_cap_mb=0)
        with pytest.raises(ValueError):
            SharedService("svc", "srv0", cpu_cap_fraction=0)

    def test_memory_cap_terminates_fail_closed(self):
        """§3.4.2: exceed the memory cap and the OS kills the agent."""
        service = SharedService("svc", "srv0", memory_cap_mb=45.0)
        service.start()
        service.charge(memory_mb=44.0)
        assert service.running
        with pytest.raises(ResourceBudgetExceeded):
            service.charge(memory_mb=46.0)
        assert not service.running
        assert "memory cap exceeded" in service.terminated_reason

    def test_restart_clears_termination_reason(self):
        service = SharedService("svc", "srv0", memory_cap_mb=10.0)
        service.start()
        with pytest.raises(ResourceBudgetExceeded):
            service.charge(memory_mb=20.0)
        service.start(now=50.0)
        assert service.terminated_reason is None

    def test_charges_ignored_when_stopped(self):
        service = SharedService("svc", "srv0")
        service.charge(cpu_seconds=5.0)
        assert service.usage.cpu_seconds == 0.0

    def test_perf_counters_exposed(self):
        service = SharedService("svc", "srv0")
        service.start(now=0.0)
        service.charge(cpu_seconds=1.0, memory_mb=30.0)
        counters = service.perf_counters(now=100.0)
        assert counters["cpu_utilization"] == pytest.approx(0.01)
        assert counters["memory_mb"] == 30.0
        assert counters["peak_memory_mb"] == 30.0

    def test_bytes_accounting(self):
        service = SharedService("svc", "srv0")
        service.start()
        service.charge(sent_bytes=1000)
        service.charge(sent_bytes=500)
        assert service.usage.bytes_sent == 1500
