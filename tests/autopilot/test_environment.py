"""Tests for the Autopilot environment wiring."""

import pytest

from repro.autopilot.environment import AutopilotEnvironment
from repro.autopilot.shared_service import SharedService
from repro.netsim.fabric import Fabric
from repro.netsim.topology import TopologySpec


@pytest.fixture()
def env():
    fabric = Fabric.single_dc(TopologySpec(), seed=1)
    return AutopilotEnvironment("test-env", fabric)


class CountingService(SharedService):
    """A service that reports a fixed counter."""

    def perf_counters(self, now):
        counters = super().perf_counters(now)
        counters["heartbeat"] = 1.0
        return counters


class TestDeployment:
    def test_deploy_to_all_servers(self, env):
        instances = env.deploy_shared_service(
            lambda server_id: CountingService("svc", server_id)
        )
        n_servers = env.fabric.topology.n_servers
        assert len(instances) == n_servers
        assert all(instance.running for instance in instances)
        assert env.perfcounter.producer_count == n_servers

    def test_deploy_to_subset(self, env):
        servers = [s.device_id for s in env.fabric.topology.all_servers()[:3]]
        instances = env.deploy_shared_service(
            lambda server_id: CountingService("svc", server_id), servers=servers
        )
        assert len(instances) == 3

    def test_duplicate_deploy_rejected(self, env):
        servers = [env.fabric.topology.all_servers()[0].device_id]
        env.deploy_shared_service(
            lambda sid: CountingService("svc", sid), servers=servers
        )
        with pytest.raises(ValueError):
            env.deploy_shared_service(
                lambda sid: CountingService("svc", sid), servers=servers
            )

    def test_service_lookup(self, env):
        server_id = env.fabric.topology.all_servers()[0].device_id
        env.deploy_shared_service(
            lambda sid: CountingService("svc", sid), servers=[server_id]
        )
        assert env.service_on(server_id, "svc").server_id == server_id
        with pytest.raises(KeyError):
            env.service_on(server_id, "other")

    def test_instances_of(self, env):
        env.deploy_shared_service(lambda sid: CountingService("svc", sid))
        assert len(env.instances_of("svc")) == env.fabric.topology.n_servers
        assert env.instances_of("ghost") == []


class TestOperation:
    def test_pa_collects_deployed_counters(self, env):
        env.deploy_shared_service(lambda sid: CountingService("svc", sid))
        env.start_services()
        env.run_for(600.0)
        server_id = env.fabric.topology.all_servers()[0].device_id
        series = env.perfcounter.series(server_id, "heartbeat")
        assert len(series) == 2  # default PA period is 300 s

    def test_run_for_advances_clock(self, env):
        env.run_for(1234.0)
        assert env.clock.now == 1234.0
