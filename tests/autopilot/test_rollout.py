"""Tests for staged shared-service rollout."""

import pytest

from repro.autopilot.environment import AutopilotEnvironment
from repro.autopilot.rollout import RolloutState, StagedRollout
from repro.autopilot.shared_service import SharedService
from repro.netsim.fabric import Fabric
from repro.netsim.topology import TopologySpec


@pytest.fixture()
def env():
    return AutopilotEnvironment(
        "rollout-env", Fabric.single_dc(TopologySpec(), seed=1)
    )


def _healthy_factory(server_id):
    return SharedService("svc-v2", server_id)


class CrashyService(SharedService):
    """Dies as soon as it is deployed on an 'unlucky' server."""

    def on_start(self, now):
        if self.server_id.endswith("srv3"):
            self.terminate("simulated crash loop")


class TestValidation:
    def test_stages_must_be_increasing_to_one(self, env):
        with pytest.raises(ValueError):
            StagedRollout(env, _healthy_factory, stages=())
        with pytest.raises(ValueError):
            StagedRollout(env, _healthy_factory, stages=(0.5, 0.2, 1.0))
        with pytest.raises(ValueError):
            StagedRollout(env, _healthy_factory, stages=(0.2, 0.5))
        with pytest.raises(ValueError):
            StagedRollout(env, _healthy_factory, stages=(0.0, 1.0))


class TestHealthyRollout:
    def test_reaches_whole_fleet(self, env):
        rollout = StagedRollout(
            env, _healthy_factory, stages=(0.1, 0.5, 1.0), soak_s=60.0
        )
        assert rollout.run() == RolloutState.COMPLETED
        assert rollout.servers_updated == env.fabric.topology.n_servers
        assert len(rollout.results) == 3
        assert all(result.healthy for result in rollout.results)

    def test_stages_grow_monotonically(self, env):
        rollout = StagedRollout(
            env, _healthy_factory, stages=(0.1, 0.5, 1.0), soak_s=1.0
        )
        rollout.run()
        sizes = [len(result.servers) for result in rollout.results]
        assert sum(sizes) == env.fabric.topology.n_servers
        assert sizes[0] < sizes[-1]

    def test_clock_advances_during_soak(self, env):
        rollout = StagedRollout(env, _healthy_factory, stages=(1.0,), soak_s=120.0)
        rollout.run()
        assert env.clock.now == 120.0

    def test_cannot_rerun(self, env):
        rollout = StagedRollout(env, _healthy_factory, stages=(1.0,), soak_s=1.0)
        rollout.run()
        with pytest.raises(RuntimeError):
            rollout.run()


class TestHaltOnRegression:
    def test_crash_loop_halts_before_fleet(self, env):
        rollout = StagedRollout(
            env,
            lambda sid: CrashyService("svc-v2", sid),
            stages=(0.05, 0.5, 1.0),
            soak_s=10.0,
        )
        state = rollout.run()
        # The canary stage (first few servers) may or may not include an
        # unlucky host, but the 50% stage certainly does: never complete.
        assert state == RolloutState.HALTED
        assert rollout.servers_updated < env.fabric.topology.n_servers
        failed = [result for result in rollout.results if not result.healthy]
        assert failed
        assert "crash loop" in failed[-1].detail or "died" in failed[-1].detail

    def test_custom_health_gate(self, env):
        calls = []

        def paranoid_gate(instances):
            calls.append(len(instances))
            return False, "paranoid: nothing passes"

        rollout = StagedRollout(
            env,
            _healthy_factory,
            stages=(0.1, 1.0),
            health_gate=paranoid_gate,
            soak_s=1.0,
        )
        assert rollout.run() == RolloutState.HALTED
        assert len(calls) == 1  # halted after the first gate
        assert len(rollout.results) == 1
