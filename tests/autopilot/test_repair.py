"""Tests for DM + Repair Service over the fabric."""

import pytest

from repro.autopilot.device_manager import DeviceManager, MachineState
from repro.autopilot.repair import RepairService
from repro.netsim.fabric import Fabric
from repro.netsim.faults import BlackholeType1, SilentRandomDrop
from repro.netsim.simclock import SECONDS_PER_DAY
from repro.netsim.topology import TopologySpec


@pytest.fixture()
def fabric():
    return Fabric.single_dc(TopologySpec(), seed=1)


@pytest.fixture()
def dm():
    return DeviceManager()


@pytest.fixture()
def rs(dm, fabric):
    return RepairService(dm, fabric, max_reloads_per_day=3)


class TestDeviceManager:
    def test_default_state_is_healthy(self, dm):
        assert dm.state_of("anything") == MachineState.HEALTHY

    def test_request_puts_device_on_probation(self, dm):
        dm.request_repair("dc0/ps0/tor0", "reload_switch", "black-hole", t=0.0)
        assert dm.state_of("dc0/ps0/tor0") == MachineState.PROBATION

    def test_duplicate_pending_requests_coalesce(self, dm):
        first = dm.request_repair("tor", "reload_switch", "a", t=0.0)
        second = dm.request_repair("tor", "reload_switch", "b", t=1.0)
        assert first is second
        assert len(dm.pending) == 1

    def test_different_actions_do_not_coalesce(self, dm):
        dm.request_repair("tor", "reload_switch", "a", t=0.0)
        dm.request_repair("tor", "rma_switch", "b", t=1.0)
        assert len(dm.pending) == 2

    def test_take_pending_drains(self, dm):
        dm.request_repair("tor", "reload_switch", "a", t=0.0)
        taken = dm.take_pending()
        assert len(taken) == 1
        assert dm.pending == []

    def test_devices_in_state(self, dm):
        dm.set_state("a", MachineState.FAILED)
        dm.set_state("b", MachineState.FAILED)
        assert dm.devices_in_state(MachineState.FAILED) == ["a", "b"]


class TestRepairService:
    def test_reload_clears_blackhole_and_completes(self, fabric, dm, rs):
        tor = fabric.topology.dc(0).tors[0]
        fabric.faults.inject(BlackholeType1(switch_id=tor.device_id, fraction=1.0))
        dm.request_repair(tor.device_id, "reload_switch", "black-hole", t=0.0)
        actions = rs.process_queue(now=0.0)
        assert len(actions) == 1
        assert actions[0].executed
        assert tor.reload_count == 1
        assert not fabric.faults.faults_on(tor.device_id)
        assert dm.state_of(tor.device_id) == MachineState.HEALTHY

    def test_daily_reload_budget_enforced(self, fabric, dm, rs):
        tors = fabric.topology.dc(0).tors
        for tor in tors[:5]:
            dm.request_repair(tor.device_id, "reload_switch", "bh", t=0.0)
        actions = rs.process_queue(now=0.0)
        assert len(actions) == 3  # max_reloads_per_day=3
        assert len(dm.pending) == 2  # deferred, not dropped

    def test_budget_replenishes_next_day(self, fabric, dm, rs):
        tors = fabric.topology.dc(0).tors
        for tor in tors[:5]:
            dm.request_repair(tor.device_id, "reload_switch", "bh", t=0.0)
        rs.process_queue(now=0.0)
        actions = rs.process_queue(now=SECONDS_PER_DAY + 1.0)
        assert len(actions) == 2
        assert rs.reloads_executed() == 5

    def test_budget_counters(self, fabric, dm, rs):
        assert rs.reload_budget_left(0.0) == 3
        dm.request_repair(
            fabric.topology.dc(0).tors[0].device_id, "reload_switch", "bh", t=0.0
        )
        rs.process_queue(now=0.0)
        assert rs.reloads_in_last_day(1.0) == 1
        assert rs.reload_budget_left(1.0) == 2

    def test_rma_isolates_switch(self, fabric, dm, rs):
        spine = fabric.topology.dc(0).spines[0]
        fabric.faults.inject(
            SilentRandomDrop(switch_id=spine.device_id, drop_prob=0.02)
        )
        dm.request_repair(spine.device_id, "rma_switch", "silent drops", t=0.0)
        rs.process_queue(now=0.0)
        assert not spine.is_up
        assert dm.state_of(spine.device_id) == MachineState.FAILED

    def test_rma_not_rate_limited(self, fabric, dm, rs):
        for spine in fabric.topology.dc(0).spines:
            dm.request_repair(spine.device_id, "rma_switch", "bad", t=0.0)
        actions = rs.process_queue(now=0.0)
        assert len(actions) == 4

    def test_reboot_server(self, fabric, dm, rs):
        server = fabric.topology.dc(0).servers[0]
        server.bring_down()
        dm.request_repair(server.device_id, "reboot_server", "hung", t=0.0)
        rs.process_queue(now=0.0)
        assert server.is_up

    def test_unknown_action_rejected(self, fabric, dm, rs):
        dm.request_repair("dc0/spine0", "format_disk", "?", t=0.0)
        with pytest.raises(ValueError):
            rs.process_queue(now=0.0)

    def test_invalid_budget_rejected(self, dm, fabric):
        with pytest.raises(ValueError):
            RepairService(dm, fabric, max_reloads_per_day=0)
